// Package diskcache persists expensive build artifacts — assembled
// broadcast cycles, border-precompute tables, generated graphs — as
// content-addressed files under a cache directory, so a restarted airserve
// warm-loads yesterday's build instead of re-running the Dijkstra storm.
//
// It is the disk layer under internal/servercache: servercache keeps built
// values alive in memory and singleflights concurrent builds; diskcache
// keeps their serialized forms across process restarts. Entries are keyed
// by the same canonical strings servercache keys are built from (network,
// scheme, params, cycle version), so a rebuilt-with-updates cycle lands in
// a new entry instead of invalidating the old one.
//
// On-disk format (one entry per file, name = truncated SHA-256 of the key):
//
//	off  0  magic "AIRD"
//	off  4  u32 format version (1)
//	off  8  u32 key length
//	off 12  u32 CRC-32C of the payload
//	off 16  u64 payload length
//	off 24  u32 CRC-32C of bytes [0,24) + key (the header check)
//	off 28  u32 reserved (0)
//	off 32  key bytes, zero-padded so the payload starts 64-byte aligned
//	...     payload
//
// Writes are atomic (temp file in the same directory, fsync, rename), so a
// crash mid-write leaves at worst an orphaned temp file, never a half
// entry; loads validate the header CRC, the stored key, and the payload
// CRC, and silently delete anything that fails — a corrupt entry is a
// cache miss, not an error. The payload's 64-byte alignment lets Map serve
// it straight out of the page cache: an mmap'd cycle or CSR section can be
// viewed as aligned []int32/[]float64 without copying.
//
// The byte budget is LRU: Put evicts least-recently-used entries (mtime
// order across restarts) until the directory fits. Eviction may unlink a
// file another process has mapped; POSIX keeps the mapping alive until
// unmapped, so readers never observe a torn payload.
package diskcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/mmap"
	"repro/internal/obs"
)

// Package-level instruments (DESIGN.md §10). Shared by every Cache in the
// process, like the servercache counters above this layer.
var (
	obsHits = obs.GetCounter("air_diskcache_hits_total",
		"entry loads served from a valid on-disk file")
	obsMisses = obs.GetCounter("air_diskcache_misses_total",
		"entry loads that found no usable file (absent or rejected)")
	obsEvictions = obs.GetCounter("air_diskcache_evictions_total",
		"entries evicted to keep the directory under its byte budget")
	obsCorrupt = obs.GetCounter("air_diskcache_corrupt_total",
		"entries rejected by magic/CRC/key validation and deleted")
	obsBytes = obs.GetGauge("air_diskcache_bytes",
		"bytes currently held by open disk caches")
	obsEntries = obs.GetGauge("air_diskcache_entries",
		"entries currently indexed by open disk caches")
	obsPutBytes = obs.GetCounter("air_diskcache_put_bytes_total",
		"payload bytes written into disk caches")
)

const (
	magic         = "AIRD"
	formatVersion = 1
	headerFixed   = 32        // bytes before the key
	payloadAlign  = 64        // payload offset alignment (mmap'd numeric views)
	entrySuffix   = ".aird"   // entry files; anything else in dir is ignored
	tempPrefix    = ".airtmp" // in-flight writes, cleaned up at Open
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Cache is one cache directory with an LRU byte budget. Safe for
// concurrent use; multiple Caches (even in different processes) may share
// a directory — writes are atomic and loads validate, so the worst case is
// duplicated build work, never a torn read.
type Cache struct {
	dir      string
	maxBytes int64 // <= 0 means unlimited

	mu      sync.Mutex
	entries map[string]*centry // file name -> entry
	size    int64              // sum of indexed file sizes
}

// centry is the in-memory index record for one on-disk entry.
type centry struct {
	name  string
	size  int64
	atime time.Time // last use (mtime across restarts)
}

// Open opens (creating if needed) the cache directory and indexes its
// existing entries, oldest-used first, so the LRU order survives a
// restart. Leftover temp files from a crashed writer are removed. maxBytes
// <= 0 disables the budget.
func Open(dir string, maxBytes int64) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	c := &Cache{dir: dir, maxBytes: maxBytes, entries: make(map[string]*centry)}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	for _, de := range des {
		name := de.Name()
		if strings.HasPrefix(name, tempPrefix) {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasSuffix(name, entrySuffix) || de.IsDir() {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		c.entries[name] = &centry{name: name, size: info.Size(), atime: info.ModTime()}
		c.size += info.Size()
	}
	obsEntries.Add(int64(len(c.entries)))
	obsBytes.Add(c.size)
	return c, nil
}

// Close drops the cache's in-memory index (files stay on disk for the next
// Open). Mappings handed out by Map stay valid until their own Close.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	obsEntries.Add(int64(-len(c.entries)))
	obsBytes.Add(-c.size)
	c.entries, c.size = make(map[string]*centry), 0
	return nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// Len returns the number of indexed entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the indexed on-disk footprint.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// fileName is the content address of a key: a truncated SHA-256, so keys
// of any length and character set become fixed-width portable file names.
// The full key is stored inside the entry and verified on load.
func fileName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:16]) + entrySuffix
}

// payloadOffset returns the aligned offset the payload starts at for a key.
func payloadOffset(keyLen int) int64 {
	off := int64(headerFixed + keyLen)
	return (off + payloadAlign - 1) &^ (payloadAlign - 1)
}

// header assembles the fixed header + key + padding for a finished entry.
func header(key string, payloadLen int64, payloadCRC uint32) []byte {
	off := payloadOffset(len(key))
	h := make([]byte, off)
	copy(h[0:4], magic)
	binary.LittleEndian.PutUint32(h[4:8], formatVersion)
	binary.LittleEndian.PutUint32(h[8:12], uint32(len(key)))
	binary.LittleEndian.PutUint32(h[12:16], payloadCRC)
	binary.LittleEndian.PutUint64(h[16:24], uint64(payloadLen))
	copy(h[headerFixed:], key)
	crc := crc32.Update(crc32.Checksum(h[:24], castagnoli), castagnoli, []byte(key))
	binary.LittleEndian.PutUint32(h[24:28], crc)
	return h
}

// parseHeader validates the fixed header + key of raw (at least
// headerFixed bytes) against the requested key and returns the payload
// offset, length and CRC.
func parseHeader(raw []byte, key string) (payOff, payLen int64, payCRC uint32, err error) {
	if len(raw) < headerFixed {
		return 0, 0, 0, fmt.Errorf("diskcache: entry shorter than header")
	}
	if string(raw[0:4]) != magic {
		return 0, 0, 0, fmt.Errorf("diskcache: bad magic %q", raw[0:4])
	}
	if v := binary.LittleEndian.Uint32(raw[4:8]); v != formatVersion {
		return 0, 0, 0, fmt.Errorf("diskcache: format version %d, want %d", v, formatVersion)
	}
	keyLen := int64(binary.LittleEndian.Uint32(raw[8:12]))
	if keyLen != int64(len(key)) || int64(len(raw)) < headerFixed+keyLen {
		return 0, 0, 0, fmt.Errorf("diskcache: key length mismatch")
	}
	stored := string(raw[headerFixed : headerFixed+keyLen])
	crc := crc32.Update(crc32.Checksum(raw[:24], castagnoli), castagnoli, []byte(stored))
	if crc != binary.LittleEndian.Uint32(raw[24:28]) {
		return 0, 0, 0, fmt.Errorf("diskcache: header CRC mismatch")
	}
	if stored != key {
		return 0, 0, 0, fmt.Errorf("diskcache: entry holds key %q, want %q (hash collision?)", stored, key)
	}
	payCRC = binary.LittleEndian.Uint32(raw[12:16])
	payLen = int64(binary.LittleEndian.Uint64(raw[16:24]))
	return payloadOffset(int(keyLen)), payLen, payCRC, nil
}

// Writer streams one entry's payload to disk. Write as much as needed,
// then Commit (atomic publish) or Abort (discard). The payload CRC is
// computed incrementally, so a multi-gigabyte cycle streams through
// without ever being resident.
type Writer struct {
	c    *Cache
	key  string
	f    *os.File
	off  int64 // payload bytes written
	crc  uint32
	done bool
}

// Create starts a new entry for key. The entry becomes visible to readers
// only at Commit; concurrent Creates for the same key race benignly (last
// rename wins, both contents are valid for the key).
func (c *Cache) Create(key string) (*Writer, error) {
	if key == "" {
		return nil, fmt.Errorf("diskcache: empty key")
	}
	f, err := os.CreateTemp(c.dir, tempPrefix+"-*")
	if err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	// Reserve the header region; the real header lands at Commit, when the
	// payload length and CRC are known. Until then the file has a zero
	// magic and can never validate, even if a crash leaks it past cleanup.
	if _, err := f.Write(make([]byte, payloadOffset(len(key)))); err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	return &Writer{c: c, key: key, f: f}, nil
}

// Write appends payload bytes.
func (w *Writer) Write(p []byte) (int, error) {
	n, err := w.f.Write(p)
	w.crc = crc32.Update(w.crc, castagnoli, p[:n])
	w.off += int64(n)
	if err != nil {
		return n, fmt.Errorf("diskcache: %w", err)
	}
	return n, nil
}

// Commit finalizes the header, syncs, and atomically publishes the entry,
// then evicts LRU entries if the directory exceeds its budget.
func (w *Writer) Commit() error {
	if w.done {
		return fmt.Errorf("diskcache: writer already finished")
	}
	w.done = true
	name := fileName(w.key)
	final := filepath.Join(w.c.dir, name)
	cleanup := func(err error) error {
		w.f.Close()
		os.Remove(w.f.Name())
		return err
	}
	if _, err := w.f.WriteAt(header(w.key, w.off, w.crc), 0); err != nil {
		return cleanup(fmt.Errorf("diskcache: %w", err))
	}
	if err := w.f.Sync(); err != nil {
		return cleanup(fmt.Errorf("diskcache: %w", err))
	}
	if err := w.f.Close(); err != nil {
		return cleanup(fmt.Errorf("diskcache: %w", err))
	}
	if err := os.Rename(w.f.Name(), final); err != nil {
		os.Remove(w.f.Name())
		return fmt.Errorf("diskcache: %w", err)
	}
	size := payloadOffset(len(w.key)) + w.off
	obsPutBytes.Add(w.off)

	c := w.c
	c.mu.Lock()
	if old, ok := c.entries[name]; ok {
		c.size -= old.size
		obsBytes.Add(-old.size)
		obsEntries.Dec()
	}
	c.entries[name] = &centry{name: name, size: size, atime: time.Now()}
	c.size += size
	obsBytes.Add(size)
	obsEntries.Inc()
	c.evictLocked(name)
	c.mu.Unlock()
	return nil
}

// Abort discards the in-flight entry.
func (w *Writer) Abort() {
	if w.done {
		return
	}
	w.done = true
	w.f.Close()
	os.Remove(w.f.Name())
}

// Put writes one entry in a single call (Create + Write + Commit).
func (c *Cache) Put(key string, payload []byte) error {
	w, err := c.Create(key)
	if err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		w.Abort()
		return err
	}
	return w.Commit()
}

// evictLocked drops least-recently-used entries until the directory fits
// the budget. keep (the entry just written) is never evicted — a single
// entry larger than the whole budget stays until something else replaces
// it, because evicting what we are about to serve would defeat the cache.
func (c *Cache) evictLocked(keep string) {
	if c.maxBytes <= 0 || c.size <= c.maxBytes {
		return
	}
	byAge := make([]*centry, 0, len(c.entries))
	for _, e := range c.entries {
		if e.name != keep {
			byAge = append(byAge, e)
		}
	}
	sort.Slice(byAge, func(i, j int) bool { return byAge[i].atime.Before(byAge[j].atime) })
	for _, e := range byAge {
		if c.size <= c.maxBytes {
			return
		}
		os.Remove(filepath.Join(c.dir, e.name))
		delete(c.entries, e.name)
		c.size -= e.size
		obsBytes.Add(-e.size)
		obsEntries.Dec()
		obsEvictions.Inc()
	}
}

// touchLocked refreshes an entry's LRU position, mirrored to the file
// mtime (best effort) so the order survives a restart.
func (c *Cache) touchLocked(name string) {
	e, ok := c.entries[name]
	if !ok {
		return
	}
	e.atime = time.Now()
	os.Chtimes(filepath.Join(c.dir, name), e.atime, e.atime)
}

// index registers a file discovered on disk after Open (written by another
// process sharing the directory).
func (c *Cache) index(name string, size int64) {
	c.mu.Lock()
	if _, ok := c.entries[name]; !ok {
		c.entries[name] = &centry{name: name, size: size, atime: time.Now()}
		c.size += size
		obsBytes.Add(size)
		obsEntries.Inc()
	}
	c.mu.Unlock()
}

// drop forgets (and deletes) an entry that failed validation or vanished.
func (c *Cache) drop(name string, corrupt bool) {
	path := filepath.Join(c.dir, name)
	c.mu.Lock()
	if e, ok := c.entries[name]; ok {
		delete(c.entries, name)
		c.size -= e.size
		obsBytes.Add(-e.size)
		obsEntries.Dec()
	}
	c.mu.Unlock()
	if corrupt {
		os.Remove(path)
		obsCorrupt.Inc()
	}
}

// Get loads the payload cached under key, or reports a miss. Corrupt
// entries (bad magic, CRC, or key) are deleted and reported as misses. The
// payload is a fresh heap copy; use Map to serve it from the page cache
// instead.
func (c *Cache) Get(key string) ([]byte, bool) {
	name := fileName(key)
	path := filepath.Join(c.dir, name)
	raw, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			c.drop(name, false)
		}
		obsMisses.Inc()
		return nil, false
	}
	payOff, payLen, payCRC, err := parseHeader(raw, key)
	if err != nil || int64(len(raw)) < payOff+payLen {
		c.drop(name, true)
		obsMisses.Inc()
		return nil, false
	}
	payload := raw[payOff : payOff+payLen]
	if crc32.Checksum(payload, castagnoli) != payCRC {
		c.drop(name, true)
		obsMisses.Inc()
		return nil, false
	}
	c.index(name, int64(len(raw)))
	c.mu.Lock()
	c.touchLocked(name)
	c.mu.Unlock()
	obsHits.Inc()
	return payload, true
}

// Map opens the payload cached under key as a read-only memory mapping:
// the bytes live in the page cache, not the Go heap, and stay valid until
// Mapping.Close even if the entry is evicted meanwhile (POSIX keeps
// unlinked mappings alive). Validation is identical to Get. On platforms
// without mmap the payload is read into memory and Close is a no-op
// release.
func (c *Cache) Map(key string) (*Mapping, bool) {
	name := fileName(key)
	path := filepath.Join(c.dir, name)
	f, err := os.Open(path)
	if err != nil {
		if !os.IsNotExist(err) {
			c.drop(name, false)
		}
		obsMisses.Inc()
		return nil, false
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		obsMisses.Inc()
		return nil, false
	}
	data, err := mmap.File(f, info.Size())
	if err != nil {
		c.drop(name, false)
		obsMisses.Inc()
		return nil, false
	}
	m := &Mapping{data: data}
	raw := data.Bytes()
	payOff, payLen, payCRC, err := parseHeader(raw, key)
	if err != nil || int64(len(raw)) < payOff+payLen {
		m.Close()
		c.drop(name, true)
		obsMisses.Inc()
		return nil, false
	}
	m.payload = raw[payOff : payOff+payLen]
	if crc32.Checksum(m.payload, castagnoli) != payCRC {
		m.Close()
		c.drop(name, true)
		obsMisses.Inc()
		return nil, false
	}
	c.index(name, info.Size())
	c.mu.Lock()
	c.touchLocked(name)
	c.mu.Unlock()
	obsHits.Inc()
	return m, true
}

// Remove deletes the entry for key, if any (tests and manual invalidation;
// normal operation never removes — new versions key differently).
func (c *Cache) Remove(key string) {
	c.drop(fileName(key), false)
	os.Remove(filepath.Join(c.dir, fileName(key)))
}

// Mapping is a validated read-only view of one entry's payload. Payload
// aliases the mapping — it must not be written to, and not used after
// Close.
type Mapping struct {
	data    *mmap.Data
	payload []byte
}

// Payload returns the entry payload. The slice is 64-byte aligned.
func (m *Mapping) Payload() []byte { return m.payload }

// Close releases the mapping. The payload slice is invalid afterwards.
func (m *Mapping) Close() error {
	data := m.data
	m.data, m.payload = nil, nil
	if data == nil {
		return nil
	}
	return data.Close()
}
