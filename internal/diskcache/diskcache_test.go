package diskcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPutGetRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("the quick brown cycle")
	if err := c.Put("net|NR|r=8|v0", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("net|NR|r=8|v0")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := c.Get("net|NR|r=8|v1"); ok {
		t.Fatal("Get of an absent version hit")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestMapAlignmentAndAliasing(t *testing.T) {
	c, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Keys of awkward lengths must still produce aligned payloads.
	for _, key := range []string{"k", strings.Repeat("x", 63), strings.Repeat("y", 64), strings.Repeat("z", 129)} {
		payload := bytes.Repeat([]byte{0xAB}, 8192)
		if err := c.Put(key, payload); err != nil {
			t.Fatal(err)
		}
		m, ok := c.Map(key)
		if !ok {
			t.Fatalf("Map(%q) missed", key)
		}
		if !bytes.Equal(m.Payload(), payload) {
			t.Fatalf("Map(%q) payload differs", key)
		}
		if off := payloadOffset(len(key)); off%payloadAlign != 0 {
			t.Fatalf("payload offset %d for key len %d not %d-aligned", off, len(key), payloadAlign)
		}
		// The mapping survives eviction of its file: unlink + read.
		os.Remove(filepath.Join(c.dir, fileName(key)))
		if !bytes.Equal(m.Payload(), payload) {
			t.Fatal("mapping unreadable after unlink")
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCorruptEntriesRejected flips bytes across the whole entry file —
// header, key, payload — and requires every corruption to be detected,
// counted, deleted, and served as a miss, never as data.
func TestCorruptEntriesRejected(t *testing.T) {
	dir := t.TempDir()
	key := "net|EB|r=16|v3"
	payload := []byte("precompute tables, 40 bytes of them, yes")
	for _, flip := range []int{0, 5, 9, 13, 20, 40, 70, 100} {
		c, err := Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Put(key, payload); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fileName(key))
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if flip >= len(raw) {
			t.Fatalf("flip offset %d beyond entry size %d", flip, len(raw))
		}
		raw[flip] ^= 0x40
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		before := obsCorrupt.Value()
		if got, ok := c.Get(key); ok {
			t.Fatalf("corrupt entry (flip at %d) served: %q", flip, got)
		}
		if obsCorrupt.Value() != before+1 {
			t.Fatalf("flip at %d not counted corrupt", flip)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("corrupt entry (flip at %d) not deleted", flip)
		}
		// Map must reject identically.
		if err := c.Put(key, payload); err != nil {
			t.Fatal(err)
		}
		raw, _ = os.ReadFile(path)
		raw[flip] ^= 0x40
		os.WriteFile(path, raw, 0o644)
		if m, ok := c.Map(key); ok {
			m.Close()
			t.Fatalf("corrupt entry (flip at %d) mapped", flip)
		}
		os.Remove(path)
		c.Close()
	}
}

// TestTruncatedEntryRejected: a crash can leave a shorter file only via a
// torn rename (never happens — rename is atomic) or manual tampering, but
// the loader must still refuse it.
func TestTruncatedEntryRejected(t *testing.T) {
	dir := t.TempDir()
	c, _ := Open(dir, 0)
	key := "trunc"
	if err := c.Put(key, bytes.Repeat([]byte{1}, 1000)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fileName(key))
	if err := os.Truncate(path, 200); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("truncated entry served")
	}
}

// TestEvictionUnderBudget: the LRU budget holds — oldest-used entries go
// first, the directory stays under maxBytes, and the eviction counter
// moves.
func TestEvictionUnderBudget(t *testing.T) {
	dir := t.TempDir()
	entry := payloadOffset(2) + 1024 // each entry's on-disk size (2-byte keys)
	c, err := Open(dir, 3*entry)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{7}, 1024)
	keys := []string{"k0", "k1", "k2", "k3", "k4"}
	evicted := obsEvictions.Value()
	for i, k := range keys {
		if err := c.Put(k, payload); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so the LRU order is unambiguous even on coarse
		// filesystem timestamps.
		past := time.Now().Add(time.Duration(i-10) * time.Minute)
		os.Chtimes(filepath.Join(dir, fileName(k)), past, past)
		e := c.entries[fileName(k)]
		e.atime = past
	}
	if c.Bytes() > 3*entry {
		t.Fatalf("cache %d bytes over budget %d", c.Bytes(), 3*entry)
	}
	if got := obsEvictions.Value() - evicted; got != 2 {
		t.Fatalf("%d evictions, want 2", got)
	}
	// The two oldest are gone, the three newest remain.
	for i, k := range keys {
		_, ok := c.Get(k)
		if want := i >= 2; ok != want {
			t.Errorf("after eviction, Get(%s) = %v, want %v", k, ok, want)
		}
	}
	// A recently-used entry survives the next eviction round: touch k2,
	// then push one more entry in.
	c.Get("k2")
	if err := c.Put("k5", payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k2"); !ok {
		t.Error("recently-used entry evicted before older ones")
	}
	if _, ok := c.Get("k3"); ok {
		t.Error("LRU entry k3 survived over recently-used k2")
	}
}

// TestOversizedEntryKept: one entry bigger than the whole budget is kept
// (evicting the thing just built would defeat the cache) but evicts
// everything else.
func TestOversizedEntryKept(t *testing.T) {
	c, err := Open(t.TempDir(), 512)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("small", []byte("x"))
	if err := c.Put("big", bytes.Repeat([]byte{1}, 4096)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("big"); !ok {
		t.Fatal("over-budget entry evicted itself")
	}
	if _, ok := c.Get("small"); ok {
		t.Error("small entry survived an over-budget put")
	}
}

// TestWarmRestartReuse is the warm-restart contract: a second Open of the
// same directory serves yesterday's entries as hits, proven by the hit and
// miss counters.
func TestWarmRestartReuse(t *testing.T) {
	dir := t.TempDir()
	c1, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := "germany|NR|r=16|v0"
	payload := bytes.Repeat([]byte{3}, 10_000)
	misses := obsMisses.Value()
	if _, ok := c1.Get(key); ok {
		t.Fatal("cold Get hit")
	}
	if obsMisses.Value() != misses+1 {
		t.Fatal("cold Get not counted a miss")
	}
	if err := c1.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	// "Restart": a fresh Cache over the same dir.
	c2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 1 {
		t.Fatalf("restarted cache indexes %d entries, want 1", c2.Len())
	}
	hits := obsHits.Value()
	got, ok := c2.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatal("warm restart missed")
	}
	if obsHits.Value() != hits+1 {
		t.Fatal("warm Get not counted a hit")
	}
}

// TestTwoHandlesOneDir: two Caches over one directory (two processes in
// spirit) — entries written through one are visible to the other, even
// after the other's Open, and concurrent cold writes of the same key
// converge without corruption.
func TestTwoHandlesOneDir(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put("shared", []byte("from a")); err != nil {
		t.Fatal(err)
	}
	// b's index predates the write; Get must still find it on disk.
	got, ok := b.Get("shared")
	if !ok || string(got) != "from a" {
		t.Fatalf("handle b missed a's write: %q, %v", got, ok)
	}
	if b.Len() != 1 {
		t.Fatalf("handle b indexed %d entries after the hit", b.Len())
	}

	// Concurrent cold writes of the same key from both handles: last
	// rename wins, every read sees one of the two valid payloads.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := a
			if i%2 == 1 {
				h = b
			}
			if err := h.Put("contended", []byte(fmt.Sprintf("writer %d", i%2))); err != nil {
				t.Error(err)
			}
			if got, ok := h.Get("contended"); ok {
				if s := string(got); s != "writer 0" && s != "writer 1" {
					t.Errorf("torn read: %q", s)
				}
			}
		}(i)
	}
	wg.Wait()
	got, ok = a.Get("contended")
	if !ok {
		t.Fatal("contended entry lost")
	}
	if s := string(got); s != "writer 0" && s != "writer 1" {
		t.Fatalf("final contended payload torn: %q", s)
	}
}

// TestConcurrentGetsAndPuts hammers one cache from many goroutines under
// -race: distinct keys, repeated keys, reads during writes, and an LRU
// budget forcing evictions mid-flight.
func TestConcurrentGetsAndPuts(t *testing.T) {
	c, err := Open(t.TempDir(), 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(w)}, 2048)
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("key-%d", (w*50+i)%20)
				if err := c.Put(key, payload); err != nil {
					t.Error(err)
					return
				}
				if got, ok := c.Get(key); ok && len(got) != len(payload) {
					t.Errorf("short read: %d bytes", len(got))
				}
				if m, ok := c.Map(key); ok {
					if len(m.Payload()) != len(payload) {
						t.Errorf("short map: %d bytes", len(m.Payload()))
					}
					m.Close()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Bytes() > 64<<10 {
		t.Fatalf("budget blown: %d bytes", c.Bytes())
	}
}

// TestStreamingWriter: the Create/Write/Commit path streams a payload in
// small chunks and publishes an entry identical to a one-shot Put.
func TestStreamingWriter(t *testing.T) {
	c, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.Create("streamed")
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for i := 0; i < 100; i++ {
		chunk := bytes.Repeat([]byte{byte(i)}, 123)
		want.Write(chunk)
		if _, err := w.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	// Until Commit, readers must miss.
	if _, ok := c.Get("streamed"); ok {
		t.Fatal("uncommitted entry visible")
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("streamed")
	if !ok || !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("streamed entry mismatch (%d vs %d bytes)", len(got), want.Len())
	}

	// Abort leaves nothing behind.
	w2, _ := c.Create("aborted")
	w2.Write([]byte("half"))
	w2.Abort()
	if _, ok := c.Get("aborted"); ok {
		t.Fatal("aborted entry visible")
	}
	des, _ := os.ReadDir(c.Dir())
	for _, de := range des {
		if strings.HasPrefix(de.Name(), tempPrefix) {
			t.Fatalf("temp file leaked: %s", de.Name())
		}
	}
}

// TestOpenCleansTempFiles: leftover temp files from a crashed writer are
// swept at Open and never indexed.
func TestOpenCleansTempFiles(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, tempPrefix+"-123"), []byte("crashed"), 0o644)
	os.WriteFile(filepath.Join(dir, "README"), []byte("not an entry"), 0o644)
	c, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("indexed %d entries from junk", c.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, tempPrefix+"-123")); !os.IsNotExist(err) {
		t.Fatal("crashed temp file not cleaned")
	}
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Fatal("non-entry file removed")
	}
}
