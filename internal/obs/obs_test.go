package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestCounterConcurrent hammers one counter from many goroutines and
// checks the total is exact (run under -race in CI).
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "test counter")
	const workers, per = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

// TestGaugeConcurrent checks paired Add(+1)/Add(-1) from many goroutines
// nets to zero.
func TestGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "test gauge")
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
}

// TestHistogramConcurrent checks count, sum and bucket totals are exact
// under concurrent observation.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "test histogram", []float64{1, 10, 100})
	const workers, per = 8, 4000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i % 200)) // spans all buckets incl. +Inf
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	wantSum := 0.0
	for i := 0; i < per; i++ {
		wantSum += float64(i % 200)
	}
	wantSum *= workers
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6*wantSum {
		t.Fatalf("sum = %g, want %g", got, wantSum)
	}
	var bucketTotal int64
	for i := range h.counts {
		bucketTotal += h.counts[i].Load()
	}
	if bucketTotal != workers*per {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, workers*per)
	}
}

// TestRegistrationIdempotent checks the same (name, labels) returns the
// same instrument, and different labels return different ones.
func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", "channel", "0")
	b := r.Counter("x_total", "x", "channel", "0")
	c := r.Counter("x_total", "x", "channel", "1")
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	if a == c {
		t.Fatal("different labels returned the same counter")
	}
	h1 := r.Histogram("hh", "h", []float64{1, 2})
	h2 := r.Histogram("hh", "h", []float64{5, 6, 7}) // bounds of first registration win
	if h1 != h2 {
		t.Fatal("histogram re-registration returned a distinct instrument")
	}
	if len(h2.bounds) != 2 {
		t.Fatalf("re-registration replaced bounds: %v", h2.bounds)
	}
}

// TestConcurrentFirstRegistration races many goroutines on the FIRST
// registration of the same series — the pattern Rx.Close() hits when
// parallel fleet workers flush per-channel counters — while a scraper
// renders the registry. Every goroutine must get the same instrument (no
// increment may be lost to a privately allocated duplicate) and the
// scraper must never observe a metric without its instrument. Run under
// -race in CI.
func TestConcurrentFirstRegistration(t *testing.T) {
	r := NewRegistry()
	const workers, series = 16, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for s := 0; s < series; s++ {
				r.Counter("race_total", "first-registration race", "channel", string(rune('0'+s))).Inc()
				r.Gauge("race_gauge", "gauge race", "channel", string(rune('0'+s))).Inc()
				r.Histogram("race_hist", "hist race", []float64{1, 10}, "channel", string(rune('0'+s))).Observe(float64(w))
			}
		}(w)
	}
	// Concurrent scrapes: must never panic on a nil instrument.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WriteProm(&sb); err != nil {
				t.Errorf("WriteProm: %v", err)
				return
			}
			r.Snapshot()
		}
	}()
	wg.Wait()
	for s := 0; s < series; s++ {
		lbl := string(rune('0' + s))
		if got := r.Counter("race_total", "first-registration race", "channel", lbl).Value(); got != workers {
			t.Errorf("series %d: counter = %d, want %d (increments lost to a duplicate instrument)", s, got, workers)
		}
		if got := r.Histogram("race_hist", "hist race", []float64{1, 10}, "channel", lbl).Count(); got != workers {
			t.Errorf("series %d: histogram count = %d, want %d", s, got, workers)
		}
	}
}

// TestKindMismatchPanics pins that re-registering a name as another kind
// is a loud programming error, not silent aliasing.
func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "m")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r.Gauge("m", "m")
}

// TestExpositionGolden pins the exact Prometheus text rendering: families
// sorted by name, HELP/TYPE once per family, labeled series sorted within
// it, histograms with cumulative buckets, +Inf, _sum and _count.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_last_total", "sorts last").Add(7)
	r.Counter("aa_packets_total", "per-channel packets", "channel", "1").Add(3)
	r.Counter("aa_packets_total", "per-channel packets", "channel", "0").Add(2)
	r.Gauge("mm_subscribers", "current subscribers").Set(5)
	h := r.Histogram("mm_depth", "buffer depth", []float64{1, 4})
	h.Observe(0)
	h.Observe(3)
	h.Observe(3)
	h.Observe(100)
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_packets_total per-channel packets
# TYPE aa_packets_total counter
aa_packets_total{channel="0"} 2
aa_packets_total{channel="1"} 3
# HELP mm_depth buffer depth
# TYPE mm_depth histogram
mm_depth_bucket{le="1"} 1
mm_depth_bucket{le="4"} 3
mm_depth_bucket{le="+Inf"} 4
mm_depth_sum 106
mm_depth_count 4
# HELP mm_subscribers current subscribers
# TYPE mm_subscribers gauge
mm_subscribers 5
# HELP zz_last_total sorts last
# TYPE zz_last_total counter
zz_last_total 7
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestSnapshot checks the programmatic view agrees with the instruments.
func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "c").Add(11)
	r.Gauge("g", "g").Set(-2)
	h := r.Histogram("h", "h", []float64{10})
	h.Observe(4)
	h.Observe(8)
	pts := r.Snapshot()
	byName := map[string]Point{}
	for _, p := range pts {
		byName[p.Name] = p
	}
	if p := byName["c_total"]; p.Value != 11 || p.Kind != "counter" {
		t.Fatalf("counter point %+v", p)
	}
	if p := byName["g"]; p.Value != -2 || p.Kind != "gauge" {
		t.Fatalf("gauge point %+v", p)
	}
	if p := byName["h"]; p.Value != 12 || p.Count != 2 || p.Kind != "histogram" {
		t.Fatalf("histogram point %+v", p)
	}
}

// TestInstrumentsZeroAlloc pins that the hot-path operations of every
// instrument — and the trace recorder, enabled or disabled — allocate
// nothing. The broadcast decode path runs these per packet; the repo's
// AllocsPerRun=0 regression suite depends on this staying exact.
func TestInstrumentsZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	h := r.Histogram("h", "h", ExpBuckets(1, 4, 6))
	tr := NewTrace(64)
	var nilTr *Trace
	if n := testing.AllocsPerRun(200, func() {
		c.Inc()
		g.Add(3)
		h.Observe(17)
		tr.Record(EvRetry, 12345, 0)
		nilTr.Record(EvRetry, 12345, 0)
	}); n != 0 {
		t.Fatalf("instrument hot path allocates %v per run, want 0", n)
	}
}

// TestTraceRing checks ring-wrap retention, Seq monotonicity and
// nil-safety of the flight recorder.
func TestTraceRing(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Record(EvHop, int64(i), int64(i%3))
	}
	if tr.Len() != 10 {
		t.Fatalf("Len = %d, want 10", tr.Len())
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want 4", len(ev))
	}
	for i, e := range ev {
		wantSeq := uint64(6 + i)
		if e.Seq != wantSeq || e.Pos != int64(6+i) {
			t.Fatalf("event %d = %+v, want seq/pos %d", i, e, wantSeq)
		}
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("Reset did not clear the trace")
	}

	var nilTr *Trace
	nilTr.Record(EvTuneIn, 0, 0) // must not panic
	if nilTr.Len() != 0 || nilTr.Events() != nil {
		t.Fatal("nil trace is not inert")
	}
	empty := NewTrace(0)
	empty.Record(EvTuneIn, 1, 1)
	if empty.Len() != 0 {
		t.Fatal("zero-capacity trace recorded")
	}
}

// TestEventKindStrings keeps the rendered schema names stable (they appear
// in DESIGN.md §10 and in statusz output).
func TestEventKindStrings(t *testing.T) {
	want := map[EventKind]string{
		EvTuneIn: "tune-in", EvDirRead: "dir-read", EvHop: "hop",
		EvRetry: "retry", EvReentry: "reentry", EvPatchApply: "patch-apply",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}
