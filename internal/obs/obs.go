// Package obs is the repo's dependency-free observability core: atomic
// counters, gauges and fixed-bucket histograms behind a registry with
// Prometheus text-format exposition, plus a ring-buffered per-query trace
// recorder (trace.go) — the flight recorder for the broadcast path.
//
// The paper's whole argument is measurable client-side cost under loss and
// churn, so the live half of the system must not be a black box: the
// station's delivery fast path, subscriber backpressure, cycle swaps,
// cache traffic and fleet progress all register here, and cmd/airserve
// exposes the registry on its admin listener (`airserve -admin :6060`,
// scrape `/metrics`).
//
// Design constraints, in order:
//
//   - Observationally free on the answer path. Instruments never branch on
//     query content, never allocate after registration, and never touch the
//     deterministic accounting (tuning, latency, energy) — the bench gate
//     (`airbench -exp compare`, deterministic metrics two-sided at 1.00x)
//     and the AllocsPerRun=0 pins stay green with instrumentation on.
//   - Bounded cardinality. Label values are small closed sets fixed at
//     registration (a channel index, a method name) — never a subscriber,
//     query or node ID. DESIGN.md §10 records the rules per metric.
//   - No dependencies. The exposition writer implements the slice of the
//     Prometheus text format the repo needs; nothing is imported.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Kind is the instrument family of a registered metric.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing count. All methods are safe for
// concurrent use and allocation-free.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
//
//air:noalloc
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down (queue depths, in-flight
// counts, the cycle version on the air).
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrease).
//
//air:noalloc
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution: cumulative bucket counts in
// Prometheus convention, plus an exact sum and count. Bucket bounds are
// fixed at registration; Observe is concurrency-safe and allocation-free
// (linear scan over a handful of bounds, one atomic add, one CAS loop for
// the float sum).
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf implied
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
//
//air:noalloc
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// ExpBuckets returns n upper bounds starting at start, multiplying by
// factor: the standard shape for latencies and sizes.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// metric is one registered series: an instrument plus its identity.
type metric struct {
	name   string
	help   string
	kind   Kind
	labels string // rendered `k="v",...` (no braces), "" when unlabeled
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// Registry holds registered metrics and renders them. Registration is
// idempotent: the same (name, labels) returns the same instrument, so
// package-level instruments and per-deployment registration compose.
type Registry struct {
	mu   sync.Mutex
	by   map[string]*metric
	list []*metric
}

// NewRegistry returns an empty registry. Most code uses the package
// Default registry; tests wanting golden exposition build their own.
func NewRegistry() *Registry { return &Registry{by: map[string]*metric{}} }

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every package-level instrument
// registers on — what airserve's /metrics exports.
func Default() *Registry { return defaultRegistry }

// renderLabels turns ("channel", "3", "method", "NR") into
// `channel="3",method="NR"`. Pairs keep their given order (cardinality is
// bounded by construction, so callers pass stable orders).
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("obs: odd label pair count")
	}
	out := ""
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			out += ","
		}
		out += pairs[i] + "=" + strconv.Quote(pairs[i+1])
	}
	return out
}

// register returns the metric for (name, labels), creating it — instrument
// included — under r.mu. Creating the instrument inside the lock is what
// makes registration idempotent under concurrency: two goroutines racing on
// the first registration of a series get the same instrument (not two, one
// of which would silently swallow increments), and Snapshot/WriteProm can
// never observe a metric in r.list whose instrument pointer is still nil.
func (r *Registry) register(name, help string, kind Kind, bounds []float64, labels []string) *metric {
	ls := renderLabels(labels)
	key := name + "\x00" + ls
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.by[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: %s re-registered as %s (was %s)", name, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind, labels: ls}
	switch kind {
	case KindCounter:
		m.ctr = &Counter{}
	case KindGauge:
		m.gauge = &Gauge{}
	case KindHistogram:
		m.hist = newHistogram(bounds)
	}
	r.by[key] = m
	r.list = append(r.list, m)
	return m
}

// Counter registers (or returns the existing) counter under name with the
// given label pairs ("k", "v", ...).
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.register(name, help, KindCounter, nil, labels).ctr
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.register(name, help, KindGauge, nil, labels).gauge
}

// Histogram registers (or returns the existing) histogram with the given
// upper bounds (+Inf implied). Bounds of an already-registered histogram
// are kept; the new ones are ignored.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	return r.register(name, help, KindHistogram, bounds, labels).hist
}

// Point is one series' instantaneous value: the programmatic counterpart
// of the text exposition, what Deployment.Observe and /statusz snapshot.
type Point struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Kind   string  `json:"kind"`
	Value  float64 `json:"value"`           // counter/gauge value; histogram sum
	Count  int64   `json:"count,omitempty"` // histogram observation count
}

// Snapshot returns every registered series, sorted by name then labels.
func (r *Registry) Snapshot() []Point {
	r.mu.Lock()
	list := append([]*metric(nil), r.list...)
	r.mu.Unlock()
	sortMetrics(list)
	out := make([]Point, 0, len(list))
	for _, m := range list {
		p := Point{Name: m.name, Labels: m.labels, Kind: m.kind.String()}
		switch m.kind {
		case KindCounter:
			p.Value = float64(m.ctr.Value())
		case KindGauge:
			p.Value = float64(m.gauge.Value())
		case KindHistogram:
			p.Value = m.hist.Sum()
			p.Count = m.hist.Count()
		}
		out = append(out, p)
	}
	return out
}

func sortMetrics(list []*metric) {
	sort.Slice(list, func(i, j int) bool {
		if list[i].name != list[j].name {
			return list[i].name < list[j].name
		}
		return list[i].labels < list[j].labels
	})
}

// WriteProm renders the registry in the Prometheus text exposition format
// (version 0.0.4), deterministically ordered: families sorted by name,
// series within a family by label string, HELP/TYPE once per family.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	list := append([]*metric(nil), r.list...)
	r.mu.Unlock()
	sortMetrics(list)
	lastFamily := ""
	for _, m := range list {
		if m.name != lastFamily {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.kind); err != nil {
				return err
			}
			lastFamily = m.name
		}
		var err error
		switch m.kind {
		case KindCounter:
			err = writeSeries(w, m.name, m.labels, float64(m.ctr.Value()))
		case KindGauge:
			err = writeSeries(w, m.name, m.labels, float64(m.gauge.Value()))
		case KindHistogram:
			err = writeHistogram(w, m)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeSeries(w io.Writer, name, labels string, v float64) error {
	var err error
	if labels == "" {
		_, err = fmt.Fprintf(w, "%s %s\n", name, formatValue(v))
	} else {
		_, err = fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatValue(v))
	}
	return err
}

func writeHistogram(w io.Writer, m *metric) error {
	h := m.hist
	// Observe bumps the bucket before the total (counts[i].Add, then
	// count.Add), so a concurrent scrape could see a finite bucket ahead of
	// _count. Reading the total first and clamping each cumulative bucket to
	// it keeps a single exposition internally monotonic: every finite le
	// bucket <= +Inf == _count.
	total := h.Count()
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if err := writeSeries(w, m.name+"_bucket", joinLabels(m.labels, `le="`+formatValue(b)+`"`), float64(min(cum, total))); err != nil {
			return err
		}
	}
	if err := writeSeries(w, m.name+"_bucket", joinLabels(m.labels, `le="+Inf"`), float64(total)); err != nil {
		return err
	}
	if err := writeSeries(w, m.name+"_sum", m.labels, h.Sum()); err != nil {
		return err
	}
	return writeSeries(w, m.name+"_count", m.labels, float64(total))
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

// formatValue renders a sample the way Prometheus clients do: shortest
// round-trip representation, integers without a trailing ".0".
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry's text exposition:
// mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
}

// Package-level conveniences over the Default registry.

// GetCounter registers (or fetches) a counter on the default registry.
func GetCounter(name, help string, labels ...string) *Counter {
	return defaultRegistry.Counter(name, help, labels...)
}

// GetGauge registers (or fetches) a gauge on the default registry.
func GetGauge(name, help string, labels ...string) *Gauge {
	return defaultRegistry.Gauge(name, help, labels...)
}

// GetHistogram registers (or fetches) a histogram on the default registry.
func GetHistogram(name, help string, bounds []float64, labels ...string) *Histogram {
	return defaultRegistry.Histogram(name, help, bounds, labels...)
}

// Snapshot returns the default registry's current series.
func Snapshot() []Point { return defaultRegistry.Snapshot() }

// WriteProm renders the default registry in Prometheus text format.
func WriteProm(w io.Writer) error { return defaultRegistry.WriteProm(w) }

// Handler serves the default registry's /metrics.
func Handler() http.Handler { return defaultRegistry.Handler() }
