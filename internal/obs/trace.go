package obs

// The per-query flight recorder: a fixed-capacity ring of span events a
// client handle records as its query crosses the broadcast path. Unlike
// the registry's aggregates, a trace answers "what did THIS query do" —
// where it tuned in, every packet it lost, every channel hop, every
// version-window re-entry — at a cost low enough to leave on for sampled
// queries (one nil check when disabled, one ring slot write when enabled,
// zero allocations after construction).
//
// All methods are nil-receiver safe: code under instrumentation calls
// t.Record(...) unconditionally, and a nil *Trace makes it a no-op — the
// disabled path is a single predictable branch.

// EventKind names one span event on the broadcast path. The schema is
// DESIGN.md §10's trace table; kinds are append-only (dashboards key on
// the numeric value).
type EventKind uint8

const (
	// EvTuneIn: the query attached to the air. Pos is the tune-in
	// position (logical packet position, or global tick on a sharded
	// feed); Arg is unused.
	EvTuneIn EventKind = iota
	// EvDirRead: a cold radio bootstrapped the channel directory from the
	// air. Pos is the tick it completed at; Arg is the packets spent.
	EvDirRead
	// EvHop: a sharded radio retuned to another channel. Pos is the
	// logical position it hopped for; Arg is the destination channel.
	EvHop
	// EvRetry: a packet the query listened for arrived corrupted (loss or
	// backpressure drop) — the trigger of every scheme retry loop. Pos is
	// the lost position; Arg is unused.
	EvRetry
	// EvReentry: the version window straddled a cycle swap and the query
	// re-entered. Pos is the position the re-entry started from; Arg is
	// the attempt number being discarded.
	EvReentry
	// EvPatchApply: a delta patch was applied to the client's partial
	// network instead of a full re-entry. Pos is unused; Arg is the
	// number of arcs patched.
	EvPatchApply
)

// String names the kind for rendering.
func (k EventKind) String() string {
	switch k {
	case EvTuneIn:
		return "tune-in"
	case EvDirRead:
		return "dir-read"
	case EvHop:
		return "hop"
	case EvRetry:
		return "retry"
	case EvReentry:
		return "reentry"
	case EvPatchApply:
		return "patch-apply"
	}
	return "unknown"
}

// Event is one recorded span event. Seq is the global record index since
// the trace was created (monotone; survives ring wrap, so a reader can
// tell how many early events were overwritten).
type Event struct {
	Seq  uint64    `json:"seq"`
	Kind EventKind `json:"kind"`
	Pos  int64     `json:"pos"`
	Arg  int64     `json:"arg"`
}

// Trace is a fixed-capacity ring of Events. It is single-writer (the
// query's own goroutine — the same discipline as the Tuner it instruments)
// and may be read after the query completes. The zero capacity trace (and
// the nil trace) record nothing.
type Trace struct {
	buf []Event
	n   uint64 // events recorded since creation
}

// NewTrace returns a recorder keeping the last capacity events.
func NewTrace(capacity int) *Trace {
	if capacity < 0 {
		capacity = 0
	}
	return &Trace{buf: make([]Event, capacity)}
}

// Record appends one event, overwriting the oldest once the ring is full.
// Safe (a no-op) on a nil or zero-capacity trace; never allocates.
//
//air:noalloc
func (t *Trace) Record(kind EventKind, pos, arg int64) {
	if t == nil || len(t.buf) == 0 {
		return
	}
	t.buf[t.n%uint64(len(t.buf))] = Event{Seq: t.n, Kind: kind, Pos: pos, Arg: arg}
	t.n++
}

// Len returns how many events were recorded since creation (including any
// the ring has since overwritten).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return int(t.n)
}

// Events returns the retained events in record order (oldest first).
func (t *Trace) Events() []Event {
	if t == nil || t.n == 0 {
		return nil
	}
	size := uint64(len(t.buf))
	kept := t.n
	if kept > size {
		kept = size
	}
	out := make([]Event, 0, kept)
	start := t.n - kept
	for i := start; i < t.n; i++ {
		out = append(out, t.buf[i%size])
	}
	return out
}

// Reset clears the trace for reuse (the backing ring is retained).
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	t.n = 0
}
