// Package determinism enforces the repo's bit-identical-replay invariant:
// in designated deterministic packages every timestamp must come from the
// virtual clock and every random draw from the seeded splitmix64
// discipline, so wall clocks, math/rand, and map-iteration order must
// never reach an encoded output or an answer.
package determinism

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: `forbid wall clocks, math/rand and order-sensitive map iteration in deterministic packages

In the designated deterministic packages (core, scheme, packet, precompute,
update, chaos, netdata, spath, baseline/*, and any package carrying an
//air:deterministic file directive) the analyzer reports:

  - references to time.Now, time.Since and the rest of the wall-clock and
    timer surface (replay must draw time from the virtual clock);
  - any import of math/rand or math/rand/v2 (draws come from seeded
    splitmix64 — see internal/chaos);
  - iteration over a map whose loop body is order-sensitive: map order is
    randomized per process, so anything it can reach — an encoded byte, an
    appended slice, a random draw — breaks bit-identical replay. Loops
    whose bodies are provably order-insensitive (map writes, integer/bool
    accumulation, deletes) and the collect-keys-then-sort idiom are
    allowed.

In every package, deterministic or not, calls to math/rand's package-level
draw functions (rand.Intn, rand.Shuffle, ...) are reported: they read the
shared unseeded source, which no replayable code path may do. Construct a
seeded generator instead.

A finding on a justified line is suppressed with
//air:nondeterministic "why this cannot reach an encoded byte or a draw"
on, or immediately above, the line; the justification string is mandatory.`,
	Run: run,
}

// deterministicExact lists designated package paths, matched on the
// module-relative suffix so the same analyzer works standalone, under
// go vet (full import paths) and in analysistest fixtures.
var deterministicExact = []string{
	"internal/core",
	"internal/scheme",
	"internal/packet",
	"internal/precompute",
	"internal/update",
	"internal/chaos",
	"internal/netdata",
	"internal/spath",
}

// deterministicPrefix lists designated package subtrees.
var deterministicPrefix = []string{
	"internal/baseline/",
}

// forbiddenTime is the wall-clock and timer surface of package time: none
// of it may steer a deterministic package. (time.Duration arithmetic and
// formatting remain free.)
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTicker": true, "NewTimer": true,
}

// globalRandDraws are math/rand (and v2) package-level functions that read
// the process-global source: unseeded by construction.
var globalRandDraws = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true, "N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "Uint32N": true, "Uint64N": true,
	"Uint": true, "UintN": true,
}

// IsDeterministicPath reports whether the import path names a designated
// deterministic package.
func IsDeterministicPath(path string) bool {
	for _, p := range deterministicExact {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	for _, p := range deterministicPrefix {
		if strings.HasPrefix(path, p) || strings.Contains(path, "/"+p) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	deterministic := IsDeterministicPath(pass.Pkg.Path())
	dirs := make(map[*ast.File]*analysis.Directives, len(pass.Files))
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		d := analysis.ParseDirectives(pass.Fset, f)
		dirs[f] = d
		if d.Has(analysis.DirDeterministic) {
			deterministic = true
		}
	}
	for f, d := range dirs {
		analysis.CheckJustified(pass, d, analysis.DirNondeterministic)
		checkFile(pass, f, d, deterministic)
	}
	return nil, nil
}

func checkFile(pass *analysis.Pass, f *ast.File, dirs *analysis.Directives, deterministic bool) {
	report := func(pos token.Pos, end token.Pos, format string, args ...any) {
		if _, ok := dirs.SuppressedAt(analysis.DirNondeterministic, pos); ok {
			return
		}
		pass.Report(analysis.Diagnostic{
			Pos: pos, End: end, Category: "determinism",
			Message: fmt.Sprintf(format, args...),
		})
	}

	if deterministic {
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path == "math/rand" || path == "math/rand/v2" {
				report(imp.Pos(), imp.End(),
					"deterministic package imports %s: random draws must come from the seeded splitmix64 discipline (internal/chaos)", path)
			}
		}
	}

	analysis.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[n]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if deterministic && forbiddenTime[obj.Name()] {
					report(n.Pos(), n.End(),
						"wall clock in deterministic package: time.%s breaks bit-identical replay; use the virtual clock or annotate //air:nondeterministic", obj.Name())
				}
			case "math/rand", "math/rand/v2":
				if globalRandDraws[obj.Name()] && isPackageFunc(obj) {
					report(n.Pos(), n.End(),
						"rand.%s draws from the unseeded process-global source; construct a seeded generator instead", obj.Name())
				}
			}
		case *ast.RangeStmt:
			if deterministic {
				checkMapRange(pass, n, stack, report)
			}
		}
		return true
	})
}

// isPackageFunc reports whether obj is a package-level function (as opposed
// to a method like (*rand.Rand).Intn, which is seeded by construction).
func isPackageFunc(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
