package determinism_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/determinism"
)

func TestDeterministicPackage(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer, "det")
}

func TestRandImport(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer, "detrand")
}

func TestGlobalRandEverywhere(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer, "randglobal")
}

// TestFalsePositives locks in the calibrated-clean shapes: any diagnostic in
// the detfp fixture is a regression.
func TestFalsePositives(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer, "detfp")
}

func TestIsDeterministicPath(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/core":          true,
		"repro/internal/packet":        true,
		"repro/internal/baseline/hiti": true,
		"repro/internal/obs":           false,
		"repro/internal/wire":          false,
		"internal/chaos":               true,
	} {
		if got := determinism.IsDeterministicPath(path); got != want {
			t.Errorf("IsDeterministicPath(%q) = %v, want %v", path, got, want)
		}
	}
}
