package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// checkMapRange classifies one `for ... range m` over a map. Map iteration
// order is randomized per process, so the loop is reported unless its body
// provably cannot leak the order:
//
//   - order-insensitive bodies: every write is a map store, an integer/bool
//     accumulation (+=, ^=, counters), a delete, or a write to a variable
//     declared inside the loop; no calls except pure builtins; no early
//     exits (an early return/break leaks which key came first);
//   - the canonicalization idiom: the body only collects keys/values into
//     slices, and every collected slice is sorted later in the same
//     function before any other use.
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, stack []ast.Node, report func(pos, end token.Pos, format string, args ...any)) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	c := &classifier{pass: pass, loop: rs}
	if c.orderInsensitive(rs.Body) {
		return
	}
	if c.collectThenSort(rs, stack) {
		return
	}
	report(rs.Pos(), rs.Body.Lbrace,
		"map iteration order can reach an order-sensitive sink%s; iterate sorted keys, restructure the body, or annotate //air:nondeterministic", c.reasonSuffix())
}

type classifier struct {
	pass   *analysis.Pass
	loop   *ast.RangeStmt
	reason string // first order-sensitive construct found, for the message
}

func (c *classifier) fail(reason string) bool {
	if c.reason == "" {
		c.reason = reason
	}
	return false
}

func (c *classifier) reasonSuffix() string {
	if c.reason == "" {
		return ""
	}
	return " (" + c.reason + ")"
}

// loopLocal reports whether the identifier resolves to a variable declared
// inside the loop (including the key/value variables).
func (c *classifier) loopLocal(id *ast.Ident) bool {
	obj := c.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Uses[id]
	}
	return obj != nil && obj.Pos() >= c.loop.Pos() && obj.Pos() < c.loop.End()
}

func (c *classifier) orderInsensitive(body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		if !c.stmtOK(stmt) {
			return false
		}
	}
	return true
}

func (c *classifier) stmtOK(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if !c.pure(rhs) {
				return false
			}
		}
		for _, lhs := range s.Lhs {
			if !c.writeOK(lhs, s.Tok) {
				return false
			}
		}
		return true
	case *ast.IncDecStmt:
		return c.writeOK(s.X, token.ADD_ASSIGN)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && c.builtinName(call) == "delete" {
			return c.pureArgs(call)
		}
		return c.fail("calls in the loop body")
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				return false
			}
			for _, v := range vs.Values {
				if !c.pure(v) {
					return false
				}
			}
		}
		return true
	case *ast.IfStmt:
		if s.Init != nil && !c.stmtOK(s.Init) {
			return false
		}
		if !c.pure(s.Cond) {
			return false
		}
		if !c.orderInsensitive(s.Body) {
			return false
		}
		if s.Else != nil {
			if els, ok := s.Else.(*ast.BlockStmt); ok {
				return c.orderInsensitive(els)
			}
			return c.stmtOK(s.Else)
		}
		return true
	case *ast.BlockStmt:
		return c.orderInsensitive(s)
	case *ast.BranchStmt:
		// continue restarts with another key: fine. break/goto leak which
		// key arrived first.
		if s.Tok == token.CONTINUE {
			return true
		}
		return c.fail("early exit leaks which key came first")
	case *ast.ReturnStmt:
		return c.fail("early exit leaks which key came first")
	default:
		return c.fail("order-dependent statement")
	}
}

// writeOK reports whether one assignment target keeps the body
// order-insensitive under the given assignment operator.
func (c *classifier) writeOK(lhs ast.Expr, tok token.Token) bool {
	switch l := lhs.(type) {
	case *ast.Ident:
		if l.Name == "_" || c.loopLocal(l) {
			return true
		}
		return c.accumOK(l, tok, l.Name)
	case *ast.SelectorExpr:
		// A field of a loop-local value follows its base; a field of an
		// outer value follows the accumulation rules, like an outer ident.
		if base, ok := rootIdent(l); ok && c.loopLocal(base) {
			return true
		}
		if !c.pure(l.X) {
			return false
		}
		return c.accumOK(l, tok, l.Sel.Name)
	case *ast.IndexExpr:
		// A store into another map is order-insensitive (keyed, not
		// positional); a store into a slice index that depends only on the
		// key would be too, but proving that is not worth the machinery.
		if xt := c.pass.TypesInfo.TypeOf(l.X); xt != nil {
			if _, isMap := xt.Underlying().(*types.Map); isMap {
				return c.pure(l.X) && c.pure(l.Index)
			}
		}
		return c.fail("indexed store leaks iteration order")
	default:
		return c.fail("order-dependent assignment target")
	}
}

// accumOK applies the outer-variable accumulation rules to one assignment
// target: only commutative accumulations over order-stable domains are
// safe. Integer and bitwise accumulation commute exactly; float addition
// does not (rounding is order-dependent), last-writer-wins assignment
// obviously does not.
func (c *classifier) accumOK(target ast.Expr, tok token.Token, name string) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN:
		if lt := c.pass.TypesInfo.TypeOf(target); lt != nil {
			if t, ok := lt.Underlying().(*types.Basic); ok &&
				t.Info()&(types.IsInteger|types.IsBoolean) != 0 {
				return true
			}
		}
		return c.fail("non-integer accumulation is order-dependent")
	}
	return c.fail("last-writer-wins assignment to " + name)
}

// rootIdent unwraps a selector chain (a.b.c) to its base identifier.
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// pure reports whether evaluating e has no side effects and calls nothing
// but pure builtins or type conversions.
func (c *classifier) pure(e ast.Expr) bool {
	ok := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch c.builtinName(n) {
			case "len", "cap", "min", "max", "abs":
				return true
			}
			if tv, found := c.pass.TypesInfo.Types[n.Fun]; found && tv.IsType() {
				return true // conversion
			}
			ok = c.fail("calls in the loop body")
			return false
		case *ast.FuncLit:
			ok = c.fail("function literal in the loop body")
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ok = c.fail("channel receive in the loop body")
				return false
			}
		}
		return true
	})
	return ok
}

func (c *classifier) pureArgs(call *ast.CallExpr) bool {
	for _, a := range call.Args {
		if !c.pure(a) {
			return false
		}
	}
	return true
}

// builtinName returns the name of the builtin being called, or "".
func (c *classifier) builtinName(call *ast.CallExpr) string {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return ""
	}
	if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return ""
	}
	return id.Name
}

// collectThenSort recognizes the canonicalization idiom: the loop body only
// appends keys/values (or otherwise stays order-insensitive), and every
// slice it appends to is passed to a sort call later in the same function.
func (c *classifier) collectThenSort(rs *ast.RangeStmt, stack []ast.Node) bool {
	collected := map[types.Object]bool{}
	if !c.collectAppends(rs.Body, collected) || len(collected) == 0 {
		return false
	}
	// Find the statements that follow the loop, walking outward through
	// enclosing blocks so `for { ... } ; sort.Ints(keys)` is found even
	// when the loop sits inside an if.
	for obj := range collected {
		if !c.sortedAfter(obj, rs, stack) {
			c.fail("collected slice " + obj.Name() + " is never sorted")
			return false
		}
	}
	return true
}

// collectAppends walks the body accepting order-insensitive statements plus
// `s = append(s, ...)`; appended outer slices land in collected.
func (c *classifier) collectAppends(body *ast.BlockStmt, collected map[types.Object]bool) bool {
	for _, stmt := range body.List {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if c.appendStmt(s, collected) {
				continue
			}
		case *ast.IfStmt:
			if s.Init == nil && c.pure(s.Cond) {
				okThen := c.collectAppends(s.Body, collected)
				okElse := true
				if s.Else != nil {
					if els, isBlock := s.Else.(*ast.BlockStmt); isBlock {
						okElse = c.collectAppends(els, collected)
					} else {
						okElse = false
					}
				}
				if okThen && okElse {
					continue
				}
			}
		}
		if !c.stmtOK(stmt) {
			return false
		}
	}
	return true
}

// appendStmt matches `s = append(s, pureArgs...)` with s an identifier,
// recording outer-scope destinations.
func (c *classifier) appendStmt(s *ast.AssignStmt, collected map[types.Object]bool) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 || (s.Tok != token.ASSIGN && s.Tok != token.DEFINE) {
		return false
	}
	dst, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || c.builtinName(call) != "append" || len(call.Args) < 2 || call.Ellipsis.IsValid() {
		return false
	}
	src, ok := call.Args[0].(*ast.Ident)
	if !ok || src.Name != dst.Name {
		return false
	}
	for _, a := range call.Args[1:] {
		if !c.pure(a) {
			return false
		}
	}
	if !c.loopLocal(dst) {
		obj := c.pass.TypesInfo.Uses[dst]
		if obj == nil {
			obj = c.pass.TypesInfo.Defs[dst]
		}
		if obj == nil {
			return false
		}
		collected[obj] = true
	}
	return true
}

// sortedAfter reports whether obj is passed to a sort.* / slices.Sort* call
// in a statement after the loop within one of its enclosing blocks.
func (c *classifier) sortedAfter(obj types.Object, rs *ast.RangeStmt, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		block, ok := stack[i].(*ast.BlockStmt)
		if !ok {
			continue
		}
		for _, stmt := range block.List {
			if stmt.Pos() <= rs.Pos() {
				continue
			}
			found := false
			ast.Inspect(stmt, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || found {
					return !found
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "sort", "slices":
				default:
					return true
				}
				for _, a := range call.Args {
					if id, ok := a.(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == obj {
						found = true
						return false
					}
				}
				return true
			})
			if found {
				return true
			}
		}
	}
	return false
}
