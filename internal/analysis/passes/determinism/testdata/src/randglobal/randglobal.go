// Package randglobal is NOT a designated deterministic package: wall clocks
// are fine here, but the process-global math/rand draws are reported in
// every package — no replayable code path may touch the shared source.
package randglobal

import (
	"math/rand"
	"time"
)

func draw() int {
	return rand.Intn(10) // want `rand\.Intn draws from the unseeded process-global source`
}

func shuffle(s []int) {
	rand.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] }) // want `rand\.Shuffle draws from the unseeded process-global source`
}

// seededDraw goes through a constructed generator: allowed everywhere.
func seededDraw(r *rand.Rand) int { return r.Intn(10) }

// clock is fine outside deterministic packages.
func clock() time.Time { return time.Now() }
