// Package detrand exercises the math/rand import rule in a designated
// deterministic package.
//
//air:deterministic
package detrand

import (
	"math/rand" // want `deterministic package imports math/rand`
)

func seeded() *rand.Rand { return rand.New(rand.NewSource(1)) }
