// Package det exercises the determinism analyzer inside a designated
// deterministic package (via the file directive below).
//
//air:deterministic
package det

import (
	"sort"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want `wall clock in deterministic package: time\.Now`
	return time.Since(start) // want `wall clock in deterministic package: time\.Since`
}

func sleepy() {
	time.Sleep(time.Millisecond) // want `wall clock in deterministic package: time\.Sleep`
}

// durationMath uses only the arithmetic surface of package time: allowed.
func durationMath(d time.Duration) float64 {
	return (d + time.Millisecond).Seconds()
}

func justified() int64 {
	return time.Now().UnixNano() //air:nondeterministic "fixture: wall time feeds a log line, never an encoded byte"
}

func justifiedAbove() int64 {
	//air:nondeterministic "fixture: wall time feeds a log line, never an encoded byte"
	return time.Now().UnixNano()
}

func unjustified() {
	//air:nondeterministic want `requires a quoted justification`
	_ = time.Unix(0, 0)
}

func orderSensitive(m map[int]int) []int {
	var out []int
	for k := range m { // want `map iteration order can reach an order-sensitive sink`
		out = append(out, use(k))
	}
	return out
}

func earlyExit(m map[int]bool) bool {
	for _, v := range m { // want `early exit leaks which key came first`
		if v {
			return true
		}
	}
	return false
}

func lastWriterWins(m map[int]int) int {
	latest := 0
	for _, v := range m { // want `last-writer-wins assignment to latest`
		latest = v
	}
	return latest
}

func floatSum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m { // want `non-integer accumulation is order-dependent`
		sum += v
	}
	return sum
}

func suppressedRange(m map[int]int) []int {
	var out []int
	for k := range m { //air:nondeterministic "fixture: order is scrubbed by the caller"
		out = append(out, use(k))
	}
	return out
}

// collectThenSort is the canonicalization idiom: collected slices sorted
// before use stay deterministic.
func collectThenSort(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// counter accumulates integers: commutative, order-insensitive.
func counter(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// invert writes only map stores: keyed, not positional.
func invert(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func use(k int) int { return k }
