// Package detfp is the determinism false-positive regression fixture: every
// shape below was found in the real tree during calibration and must stay
// clean. No want comments in this file — any diagnostic is a regression.
//
//air:deterministic
package detfp

import (
	"sort"
	"time"
)

// statsAdd mirrors chaos.Proxy.Stats-like commutative accumulation split
// across fields.
type stats struct{ hits, misses int }

func merge(m map[string]stats) stats {
	var total stats
	for _, s := range m {
		total.hits += s.hits
		total.misses += s.misses
	}
	return total
}

// collectSortInsideIf mirrors hiti's border collection: the loop sits inside
// an if, the sort follows in an enclosing block.
func collectSortInsideIf(m map[int]bool, enabled bool) []int {
	var keys []int
	if enabled {
		for k := range m {
			if k > 0 {
				keys = append(keys, k)
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// retain mirrors the superedge release loop restructured as pure map writes.
func retain(in map[int]bool, keep map[int]bool) map[int]bool {
	out := map[int]bool{}
	for k := range in {
		if keep[k] {
			out[k] = true
		}
	}
	return out
}

// prune deletes with pure arguments.
func prune(m map[int]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// durations exercises the allowed non-clock surface of package time.
func durations(n int) time.Duration {
	return time.Duration(n) * time.Millisecond
}

// bitset accumulates with bitwise or: commutative on integers.
func bitset(m map[int]uint64) uint64 {
	var bits uint64
	for _, v := range m {
		bits |= v
	}
	return bits
}
