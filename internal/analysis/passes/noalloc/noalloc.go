// Package noalloc statically checks the bodies of //air:noalloc-annotated
// functions — the hot paths pinned at zero allocations per operation by
// testing.AllocsPerRun tests — for constructs that obviously heap-allocate.
// The runtime pins prove the property; this analyzer explains, at the
// source line, where a regression would come from, and catches it at vet
// time instead of at test time.
package noalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc: `check //air:noalloc functions for obviously heap-allocating constructs

A function whose doc comment carries //air:noalloc declares itself a
zero-allocation hot path (by convention it is also pinned by an
AllocsPerRun=0 test; internal/analysis/noallocpin cross-checks the two
lists). Inside its body the analyzer reports:

  - fmt.* calls (interface boxing plus formatting state);
  - make, new, composite literals of slice/map/chan type, and &T{...};
  - go statements, and defer inside a loop (deferred frames heap-allocate
    when the defer count is not static);
  - implicit concrete-to-interface conversions at call arguments,
    assignments and returns (boxing);
  - string<->[]byte/[]rune conversions and non-constant string
    concatenation;
  - function literals that capture variables, unless returned, invoked in
    place, or passed to a same-package //air:noalloc function (those stay
    on the stack when the pin holds);
  - append whose destination escapes the function (a field, a global, a
    captured variable).

Arguments of panic(...) are exempt: an aborting path may allocate its
error. A justified finding is suppressed line-level with
//air:alloc-ok "why this does not allocate per operation".`,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	// Names of //air:noalloc functions in this package, so closures handed
	// to them are trusted (e.g. packet.All passing its yield adapter to
	// packet.ForEachRecord).
	trusted := map[string]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && analysis.FuncDirective(fn, analysis.DirNoAlloc) {
				trusted[fn.Name.Name] = true
			}
		}
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		dirs := analysis.ParseDirectives(pass.Fset, f)
		analysis.CheckJustified(pass, dirs, analysis.DirAllocOK)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !analysis.FuncDirective(fn, analysis.DirNoAlloc) {
				continue
			}
			c := &checker{pass: pass, dirs: dirs, fn: fn, trusted: trusted}
			c.check()
		}
	}
	return nil, nil
}

type checker struct {
	pass    *analysis.Pass
	dirs    *analysis.Directives
	fn      *ast.FuncDecl
	trusted map[string]bool
}

func (c *checker) report(n ast.Node, format string, args ...any) {
	if _, ok := c.dirs.SuppressedAt(analysis.DirAllocOK, n.Pos()); ok {
		return
	}
	c.pass.Report(analysis.Diagnostic{
		Pos: n.Pos(), End: n.End(), Category: "noalloc",
		Message: fmt.Sprintf("//air:noalloc %s: %s", c.fn.Name.Name, fmt.Sprintf(format, args...)),
	})
}

func (c *checker) check() {
	info := c.pass.TypesInfo
	analysis.WithStack(c.fn.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// panic(...) may allocate: it is the abort path, outside the
			// per-operation budget. Prune the whole argument subtree.
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					switch b.Name() {
					case "panic":
						return false
					case "make":
						c.report(n, "make allocates")
						return true
					case "new":
						c.report(n, "new allocates")
						return true
					case "append":
						c.checkAppend(n, stack)
						return true
					}
				}
			}
			c.checkCall(n)
		case *ast.DeferStmt:
			if inLoop(stack) {
				c.report(n, "defer in a loop heap-allocates its frame")
			}
		case *ast.GoStmt:
			c.report(n, "go statement allocates a goroutine")
		case *ast.FuncLit:
			c.checkFuncLit(n, stack)
		case *ast.CompositeLit:
			c.checkComposite(n, stack)
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := info.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						if info.Types[n].Value == nil { // non-constant concatenation
							c.report(n, "string concatenation allocates")
						}
					}
				}
			}
		}
		return true
	})
}

// checkCall reports fmt calls, string conversions, and implicit
// concrete-to-interface conversions at the arguments of one call.
func (c *checker) checkCall(call *ast.CallExpr) {
	info := c.pass.TypesInfo
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			c.report(call, "fmt.%s allocates (formatting state and interface boxing)", fn.Name())
			return
		}
	}
	// Conversions: string([]byte), []byte(string), []rune(string).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, info.TypeOf(call.Args[0])
		if from != nil && convAllocates(to, from) && info.Types[call.Args[0]].Value == nil {
			c.report(call, "%s conversion copies and allocates", types.TypeString(to, types.RelativeTo(c.pass.Pkg)))
		}
		return
	}
	// Implicit interface conversions at arguments.
	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing a slice through, no per-element boxing
			}
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		c.checkBoxing(arg, param)
	}
}

// checkBoxing reports a concrete value converted to an interface.
func (c *checker) checkBoxing(expr ast.Expr, target types.Type) {
	if target == nil || !types.IsInterface(target.Underlying()) {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsNil() {
		return // nil converts to an interface without allocating
	}
	if types.IsInterface(tv.Type.Underlying()) {
		return // interface-to-interface carries the existing box
	}
	if tv.Value != nil {
		return // constants box from static storage, not per operation
	}
	if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
		return // pointer-shaped values box without allocating
	}
	c.report(expr, "implicit conversion of %s to interface %s boxes on the heap",
		types.TypeString(tv.Type, types.RelativeTo(c.pass.Pkg)),
		types.TypeString(target, types.RelativeTo(c.pass.Pkg)))
}

// checkFuncLit reports capturing closures except in the shapes the pinned
// hot paths prove allocation-free: returned iterators, immediate
// invocation, and callbacks handed to same-package //air:noalloc functions.
func (c *checker) checkFuncLit(lit *ast.FuncLit, stack []ast.Node) {
	if !c.captures(lit) {
		return
	}
	if len(stack) >= 2 {
		switch parent := stack[len(stack)-2].(type) {
		case *ast.ReturnStmt:
			return // returned iterator: the caller's range loop keeps it on the stack
		case *ast.CallExpr:
			if parent.Fun == lit {
				return // immediately invoked
			}
			if c.trustedCallee(parent) {
				return // handed to a pinned same-package hot path
			}
		}
	}
	c.report(lit, "capturing closure may heap-allocate its environment")
}

func (c *checker) trustedCallee(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return c.trusted[fun.Name]
	case *ast.SelectorExpr:
		if fn, ok := c.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() == c.pass.Pkg {
			return c.trusted[fn.Name()]
		}
	}
	return false
}

// captures reports whether the literal references identifiers declared
// outside it.
func (c *checker) captures(lit *ast.FuncLit) bool {
	info := c.pass.TypesInfo
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == nil || v.Parent() == types.Universe {
			return true
		}
		// Declared outside the literal but inside the enclosing function?
		if v.Pos() < lit.Pos() && v.Pos() >= c.fn.Pos() {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkComposite reports slice/map/chan literals and &T{...}.
func (c *checker) checkComposite(lit *ast.CompositeLit, stack []ast.Node) {
	t := c.pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Chan:
		c.report(lit, "%s literal allocates", types.TypeString(t, types.RelativeTo(c.pass.Pkg)))
		return
	}
	if len(stack) >= 2 {
		if u, ok := stack[len(stack)-2].(*ast.UnaryExpr); ok && u.Op == token.AND {
			c.report(u, "&%s{...} escapes to the heap", types.TypeString(t, types.RelativeTo(c.pass.Pkg)))
		}
	}
}

// checkAppend reports append whose destination escapes the function.
func (c *checker) checkAppend(call *ast.CallExpr, stack []ast.Node) {
	if len(call.Args) == 0 {
		return
	}
	switch dst := call.Args[0].(type) {
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[dst]
		if v, ok := obj.(*types.Var); ok {
			if v.Pos() < c.fn.Pos() || v.Pos() > c.fn.End() {
				c.report(call, "append to %s (declared outside the function) may grow a heap slice", dst.Name)
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := c.pass.TypesInfo.Selections[dst]; ok && sel.Kind() == types.FieldVal {
			c.report(call, "append to field %s escapes; growth heap-allocates", dst.Sel.Name)
		}
	}
}

// convAllocates reports whether a conversion between these types copies
// backing storage: string <-> []byte / []rune in either direction.
func convAllocates(to, from types.Type) bool {
	return (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Uint8 || e.Kind() == types.Rune || e.Kind() == types.Int32)
}

func inLoop(stack []ast.Node) bool {
	for _, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}

func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	t := info.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}
