package noalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/noalloc"
)

func TestAnnotatedFunctions(t *testing.T) {
	analysistest.Run(t, "testdata", noalloc.Analyzer, "alloc")
}

// TestFalsePositives locks in the calibrated-clean shapes mirrored from the
// repo's pinned hot paths: any diagnostic in the allocfp fixture is a
// regression.
func TestFalsePositives(t *testing.T) {
	analysistest.Run(t, "testdata", noalloc.Analyzer, "allocfp")
}
