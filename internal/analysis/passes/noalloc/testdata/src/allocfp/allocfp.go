// Package allocfp locks in calibrated-clean shapes for the noalloc
// analyzer: every construct here mirrors a pinned zero-allocation hot path
// in the real tree (packet.All / packet.ForEachRecord, the tuner's Listen,
// the graph's mapped reads). Any diagnostic in this file is a false
// positive and a regression.
package allocfp

import "errors"

var errShort = errors.New("allocfp: short frame")

// ForEachRecord mirrors packet.ForEachRecord: an annotated hot path that
// walks a byte slice and invokes a caller-supplied callback.
//
//air:noalloc
func ForEachRecord(frame []byte, fn func(kind byte, payload []byte) error) error {
	for len(frame) > 0 {
		if len(frame) < 2 {
			return errShort // pre-allocated sentinel, no per-call alloc
		}
		n := int(frame[1])
		if len(frame) < 2+n {
			return errShort
		}
		if err := fn(frame[0], frame[2:2+n]); err != nil {
			return err
		}
		frame = frame[2+n:]
	}
	return nil
}

// All mirrors packet.All: a returned range-over-func iterator whose closure
// captures the frame and adapts the yield through a trusted annotated
// callee. The closure is returned and the adapter is handed to a
// same-package //air:noalloc function — both stay on the stack.
//
//air:noalloc
func All(frame []byte) func(yield func(byte, []byte) bool) {
	return func(yield func(byte, []byte) bool) {
		stop := errShort
		err := ForEachRecord(frame, func(kind byte, payload []byte) error {
			if !yield(kind, payload) {
				return stop
			}
			return nil
		})
		_ = err
	}
}

// Observe mirrors obs histogram observation: integer index math, atomic-ish
// slot updates through a pointer receiver, no boxing.
type histogram struct {
	bounds []float64
	counts []uint64
	sum    float64
}

//air:noalloc
func (h *histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
}

// Out mirrors graph mapped reads: sub-slicing backing arrays allocates
// nothing.
type csr struct {
	off []int32
	dst []int32
	wgt []float64
}

//air:noalloc
func (g *csr) Out(v int32) ([]int32, []float64) {
	lo, hi := g.off[v], g.off[v+1]
	return g.dst[lo:hi], g.wgt[lo:hi]
}

// Listen mirrors the tuner hot loop: switch on a kind byte, slice reuse,
// early continue, deferred cleanup outside any loop.
//
//air:noalloc
func Listen(frames [][]byte, scratch []int32) (int, error) {
	defer clearScratch(scratch)
	matched := 0
	for _, f := range frames {
		if len(f) == 0 {
			continue
		}
		switch f[0] {
		case 0:
			continue
		case 1:
			matched++
		default:
			if err := ForEachRecord(f, keepAlive); err != nil {
				return matched, err
			}
		}
	}
	return matched, nil
}

//air:noalloc
func clearScratch(s []int32) {
	for i := range s {
		s[i] = 0
	}
}

func keepAlive(kind byte, payload []byte) error { return nil }
