// Package alloc exercises the noalloc analyzer on annotated functions.
package alloc

import "fmt"

type buf struct {
	data  []byte
	count int
}

// unannotated may allocate freely: the analyzer only binds //air:noalloc.
func unannotated(n int) []int { return make([]int, n) }

//air:noalloc
func makes(n int) {
	_ = make([]int, n) // want `//air:noalloc makes: make allocates`
	_ = new(buf)       // want `//air:noalloc makes: new allocates`
}

//air:noalloc
func literals() {
	_ = []int{1, 2}      // want `literal allocates`
	_ = map[string]int{} // want `literal allocates`
	_ = &buf{}           // want `escapes to the heap`
	_ = buf{count: 1}    // plain struct value stays on the stack
}

//air:noalloc
func formats(n int) {
	_ = fmt.Sprintf("%d", n) // want `fmt\.Sprintf allocates`
}

//air:noalloc
func conversions(s string, b []byte) {
	_ = []byte(s) // want `conversion copies and allocates`
	_ = string(b) // want `conversion copies and allocates`
	_ = len(s)    // builtins are fine
}

//air:noalloc
func concat(a, b string) string {
	const pre = "x"
	_ = pre + "y" // constant concatenation folds at compile time
	return a + b  // want `string concatenation allocates`
}

func sink(v any) { _ = v }

//air:noalloc
func boxing(n int, p *buf) {
	sink(n) // want `implicit conversion of int to interface`
	sink(p) // pointer-shaped: boxes without allocating
	sink(3) // constants box from static storage
}

//air:noalloc
func control(items []int) {
	go formats(1) // want `go statement allocates a goroutine`
	for range items {
		defer sink(nil) // want `defer in a loop heap-allocates its frame`
	}
}

//air:noalloc
func appends(b *buf, local []byte, v byte) []byte {
	b.data = append(b.data, v) // want `append to field data escapes`
	local = append(local, v)   // growth of a local stays local when it fits
	return local
}

//air:noalloc
func iterate(fn func(int) bool) {
	for i := 0; i < 4; i++ {
		if !fn(i) {
			return
		}
	}
}

//air:noalloc
func closures(total *int) {
	iterate(func(i int) bool { // trusted callee: iterate is //air:noalloc
		*total += i
		return true
	})
	f := func(i int) bool { // want `capturing closure may heap-allocate`
		*total += i
		return true
	}
	_ = f
	func() { *total++ }() // immediately invoked: stays on the stack
}

//air:noalloc
func returnsIterator(data []byte) func(func(byte) bool) {
	return func(yield func(byte) bool) { // returned iterator: caller keeps it on the stack
		for _, b := range data {
			if !yield(b) {
				return
			}
		}
	}
}

//air:noalloc
func aborts(n int) {
	if n < 0 {
		panic(fmt.Errorf("negative: %d", n)) // abort path may allocate its error
	}
}

//air:noalloc
func suppressed(n int) {
	_ = make([]int, n) //air:alloc-ok "fixture: amortized by the caller's pool"
}

//air:noalloc
func badSuppression(n int) {
	//air:alloc-ok want `requires a quoted justification`
	_ = make([]int, n)
}
