package frameconst_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/frameconst"
)

func TestRespelledLiterals(t *testing.T) {
	analysistest.Run(t, "testdata", frameconst.Analyzer, "wire")
}

// TestFalsePositives locks in the calibrated-clean shapes: without a packet
// import 155 is just a number, and a local Kind type is not packet.Kind.
func TestFalsePositives(t *testing.T) {
	analysistest.Run(t, "testdata", frameconst.Analyzer, "wirefp")
}

// TestSuggestedFixes applies the machine fixes over the wire fixture and
// asserts the re-spelled literals come back as named constants — what
// `airvet -fix` writes to disk.
func TestSuggestedFixes(t *testing.T) {
	fixed := analysistest.RunFixSuggestions(t, "testdata", frameconst.Analyzer, "wire")
	src, ok := fixed["wire.go"]
	if !ok {
		t.Fatalf("no fixes produced for wire.go (got %d fixed files)", len(fixed))
	}
	for _, want := range []string{
		"uint32(packet.FrameMagic)",
		"make([]byte, packet.MaxFrameSize)",
		"k == packet.KindMeta",
		"case packet.KindDelta:",
		"packet.Kind(packet.KindData)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("fixed wire.go missing %q", want)
		}
	}
	// The want comments still spell the literals; the code must not.
	for _, stale := range []string{"uint32(0x46524941)", "make([]byte, 155)", "k == 2", "case 3:", "packet.Kind(1)"} {
		if strings.Contains(src, stale) {
			t.Errorf("fixed wire.go still contains re-spelled form %q", stale)
		}
	}
}
