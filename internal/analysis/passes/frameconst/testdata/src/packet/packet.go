// Package packet is a stub of the repo's internal/packet constant surface:
// the frameconst analyzer binds by package base name, so this fixture is
// the canonical home for the frame magic, the frame size, and the Kind
// codes within testdata.
package packet

// Kind discriminates frame payloads.
type Kind uint8

const (
	KindPad   Kind = 0
	KindData  Kind = 1
	KindMeta  Kind = 2
	KindDelta Kind = 3
)

// FrameMagic is the datagram magic ("AIRF" little endian).
const FrameMagic uint32 = 0x46524941

// MaxFrameSize is the fixed on-air frame envelope size.
const MaxFrameSize = 155
