// Package wire re-spells canonical wire literals that packet (and the
// other codec homes) own: every one must be reported, and the packet-owned
// ones must carry a machine-applicable fix.
package wire

import "packet"

// A const declaration outside the home package is still a re-spelling.
const borderMagic = "AIRB" // want `wire magic "AIRB" re-spelled outside precompute: reference the border-file magic`

func header(buf []byte) uint32 {
	copy(buf, "AIRF")         // want `wire magic "AIRF" re-spelled outside packet: reference packet\.FrameMagic`
	return uint32(0x46524941) // want `frame magic 0x46524941 re-spelled outside packet; use packet\.FrameMagic`
}

func alloc() []byte {
	return make([]byte, 155) // want `frame size 155 re-spelled; use packet\.MaxFrameSize`
}

func classify(k packet.Kind) int {
	if k == packet.KindPad { // named constant: the one right spelling
		return -1
	}
	if k == 2 { // want `packet kind code 2 re-spelled numerically; use packet\.KindMeta`
		return 2
	}
	switch k {
	case 3: // want `packet kind code 3 re-spelled numerically; use packet\.KindDelta`
		return 3
	case packet.KindData:
		return 1
	}
	return 0
}

func convert() packet.Kind {
	return packet.Kind(1) // want `packet kind code 1 re-spelled numerically; use packet\.KindData`
}

func cycles(buf []byte) {
	copy(buf, "AIRC") // want `wire magic "AIRC" re-spelled outside broadcast: reference the cycle-file magic`
}
