// Package wirefp locks in calibrated-clean shapes for the frameconst
// analyzer: without a packet import, 155 is just a number, and a local Kind
// type is not packet.Kind. Any diagnostic in this file is a false positive
// and a regression.
package wirefp

// Kind here is a local enumeration, unrelated to packet.Kind.
type Kind uint8

const (
	kindA Kind = 1
	kindB Kind = 2
)

// batch sizes, retry counts: 155 with no packet import in sight is not the
// frame size.
func sizes() []byte {
	b := make([]byte, 155)
	for i := 0; i < 155; i++ {
		b[i] = byte(i)
	}
	return b
}

func localKinds(k Kind) bool {
	if k == 2 {
		return true
	}
	switch k {
	case 1:
		return false
	}
	return Kind(1) == k
}
