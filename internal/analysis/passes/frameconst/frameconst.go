// Package frameconst keeps every literal that must agree with the wire in
// exactly one place: the frame magic, the file-format magics (AIRG, AIRM,
// AIRB, AIRC, AIRD and the border end sentinel), and packet kind codes are
// defined in their codec packages and must be referenced by name — never
// re-spelled — everywhere else. A re-spelled wire literal is the classic
// silent-drift bug: the copy keeps compiling after the canonical value
// moves.
package frameconst

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "frameconst",
	Doc: `forbid re-spelled wire-format literals outside their defining codec package

The canonical table (value -> home package, constant):

  0x46524941   packet      FrameMagic (the "AIRF" datagram magic)
  155          packet      MaxFrameSize (only in packages importing packet)
  "AIRF"       packet      frame magic string form
  "AIRG"       graph       binary graph codec magic
  "AIRM"       graph       mapped (mmap) graph magic
  "AIRB"       precompute  border/precompute file magic
  "BENDBEND"   precompute  border file end sentinel
  "AIRC"       broadcast   cycle file magic
  "AIRD"       diskcache   disk cache entry magic

plus every typed packet.Kind code: a Kind-typed integer literal (in a
conversion, comparison or switch case) outside internal/packet must be
spelled as the named constant (packet.KindData, ...), not its numeric
value.

Where the named constant is already importable at the finding site, the
diagnostic carries a machine-applicable fix (airvet -fix).`,
	Run: run,
}

// homes maps canonical string literals to the base name of their defining
// package and the constant to reference instead.
var stringHomes = map[string]struct{ home, constName string }{
	"AIRF":     {"packet", "packet.FrameMagic"},
	"AIRG":     {"graph", "the graph codec magic"},
	"AIRM":     {"graph", "the mapped-graph magic"},
	"AIRB":     {"precompute", "the border-file magic"},
	"BENDBEND": {"precompute", "the border-file end sentinel"},
	"AIRC":     {"broadcast", "the cycle-file magic"},
	"AIRD":     {"diskcache", "the cache-entry magic"},
}

// frameMagic is packet.FrameMagic's value ("AIRF" little endian).
const frameMagic = 0x46524941

// maxFrameSize is packet.MaxFrameSize's value; only reported in packages
// that import packet (anywhere else 155 is just a number).
const maxFrameSize = 155

func run(pass *analysis.Pass) (any, error) {
	// The analysis packages themselves are the one legitimate second home
	// for these literals: the detection table has to spell them. Fixtures
	// under their testdata are NOT exempt — they exercise the rules.
	if p := pass.Pkg.Path(); !strings.Contains(p, "testdata") &&
		(strings.Contains(p, "internal/analysis") || strings.HasSuffix(p, "/airvet")) {
		return nil, nil
	}
	pkgBase := pathBase(pass.Pkg.Path())
	importsPacket := false
	for _, imp := range pass.Pkg.Imports() {
		if pathBase(imp.Path()) == "packet" {
			importsPacket = true
		}
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		checkFile(pass, f, pkgBase, importsPacket)
	}
	return nil, nil
}

func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func checkFile(pass *analysis.Pass, f *ast.File, pkgBase string, importsPacket bool) {
	info := pass.TypesInfo
	analysis.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.ImportSpec:
			return false // the path string is not a wire literal
		case *ast.BasicLit:
			checkLit(pass, f, n, stack, pkgBase, importsPacket)
		}
		return true
	})

	// Kind-typed literals outside packet.
	if pkgBase == "packet" {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// Conversion packet.Kind(3).
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() && isKind(tv.Type) && len(n.Args) == 1 {
				if lit, ok := n.Args[0].(*ast.BasicLit); ok {
					reportKind(pass, n, lit)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ || n.Op == token.LSS ||
				n.Op == token.GTR || n.Op == token.LEQ || n.Op == token.GEQ {
				checkKindCompare(pass, info, n.X, n.Y)
				checkKindCompare(pass, info, n.Y, n.X)
			}
		case *ast.SwitchStmt:
			if n.Tag == nil {
				return true
			}
			if t := info.TypeOf(n.Tag); t != nil && isKind(t) {
				for _, clause := range n.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if lit, ok := e.(*ast.BasicLit); ok {
							reportKind(pass, lit, lit)
						}
					}
				}
			}
		}
		return true
	})
}

// isKind reports whether t is the named type Kind of a packet package.
func isKind(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Kind" && obj.Pkg() != nil && pathBase(obj.Pkg().Path()) == "packet"
}

func checkKindCompare(pass *analysis.Pass, info *types.Info, typed, other ast.Expr) {
	t := info.TypeOf(typed)
	if t == nil || !isKind(t) {
		return
	}
	if lit, ok := other.(*ast.BasicLit); ok && lit.Kind == token.INT {
		reportKind(pass, lit, lit)
	}
}

// reportKind reports a Kind code spelled numerically, with a fix when the
// named constant is resolvable through an imported packet package.
func reportKind(pass *analysis.Pass, at ast.Node, lit *ast.BasicLit) {
	val, err := strconv.ParseInt(lit.Value, 0, 64)
	if err != nil {
		return
	}
	d := analysis.Diagnostic{
		Pos: at.Pos(), End: at.End(), Category: "frameconst",
		Message: fmt.Sprintf("packet kind code %s re-spelled numerically; reference the named packet.Kind constant", lit.Value),
	}
	if name, qual := kindConstName(pass, val); name != "" {
		d.Message = fmt.Sprintf("packet kind code %s re-spelled numerically; use %s.%s", lit.Value, qual, name)
		d.SuggestedFixes = []analysis.SuggestedFix{{
			Message:   fmt.Sprintf("replace %s with %s.%s", lit.Value, qual, name),
			TextEdits: []analysis.TextEdit{{Pos: lit.Pos(), End: lit.End(), NewText: []byte(qual + "." + name)}},
		}}
	}
	pass.Report(d)
}

// kindConstName finds the named Kind constant with the given value in an
// imported packet package, along with the local qualifier.
func kindConstName(pass *analysis.Pass, val int64) (name, qualifier string) {
	for _, imp := range pass.Pkg.Imports() {
		if pathBase(imp.Path()) != "packet" {
			continue
		}
		scope := imp.Scope()
		for _, n := range scope.Names() {
			c, ok := scope.Lookup(n).(*types.Const)
			if !ok || !isKind(c.Type()) {
				continue
			}
			if v, ok := constant.Int64Val(c.Val()); ok && v == val {
				return c.Name(), imp.Name()
			}
		}
	}
	return "", ""
}

func checkLit(pass *analysis.Pass, f *ast.File, lit *ast.BasicLit, stack []ast.Node, pkgBase string, importsPacket bool) {
	switch lit.Kind {
	case token.STRING:
		s, err := strconv.Unquote(lit.Value)
		if err != nil {
			return
		}
		home, ok := stringHomes[s]
		if !ok {
			return
		}
		if pkgBase == home.home && inConstOrVarDecl(stack) {
			return // the canonical definition site
		}
		pass.Report(analysis.Diagnostic{
			Pos: lit.Pos(), End: lit.End(), Category: "frameconst",
			Message: fmt.Sprintf("wire magic %q re-spelled outside %s: reference %s so format drift cannot silently fork the codec", s, home.home, home.constName),
		})
	case token.INT:
		val, err := strconv.ParseUint(lit.Value, 0, 64)
		if err != nil {
			return
		}
		switch val {
		case frameMagic:
			if pkgBase == "packet" && inConstOrVarDecl(stack) {
				return
			}
			d := analysis.Diagnostic{
				Pos: lit.Pos(), End: lit.End(), Category: "frameconst",
				Message: fmt.Sprintf("frame magic %s re-spelled outside packet; use packet.FrameMagic", lit.Value),
			}
			if q := importQualifier(pass, "packet"); q != "" {
				d.SuggestedFixes = []analysis.SuggestedFix{{
					Message:   "replace with " + q + ".FrameMagic",
					TextEdits: []analysis.TextEdit{{Pos: lit.Pos(), End: lit.End(), NewText: []byte(q + ".FrameMagic")}},
				}}
			}
			pass.Report(d)
		case maxFrameSize:
			if !importsPacket || pkgBase == "packet" {
				return // 155 is only meaningful next to the packet codec
			}
			d := analysis.Diagnostic{
				Pos: lit.Pos(), End: lit.End(), Category: "frameconst",
				Message: "frame size 155 re-spelled; use packet.MaxFrameSize (it moves when the envelope or payload layout does)",
			}
			if q := importQualifier(pass, "packet"); q != "" {
				d.SuggestedFixes = []analysis.SuggestedFix{{
					Message:   "replace with " + q + ".MaxFrameSize",
					TextEdits: []analysis.TextEdit{{Pos: lit.Pos(), End: lit.End(), NewText: []byte(q + ".MaxFrameSize")}},
				}}
			}
			pass.Report(d)
		}
	}
}

// importQualifier returns the local package name under which a package with
// the given base name is imported, or "".
func importQualifier(pass *analysis.Pass, base string) string {
	for _, imp := range pass.Pkg.Imports() {
		if pathBase(imp.Path()) == base {
			return imp.Name()
		}
	}
	return ""
}

// inConstOrVarDecl reports whether the literal sits inside a top-level
// const or var declaration (the one place a canonical value may be spelled).
func inConstOrVarDecl(stack []ast.Node) bool {
	for _, n := range stack {
		if gd, ok := n.(*ast.GenDecl); ok && (gd.Tok == token.CONST || gd.Tok == token.VAR) {
			return true
		}
	}
	return false
}
