// Package obsdiscipline enforces the metric-registration rules of
// DESIGN.md §10 at vet time: literal air_-prefixed names, literal bounded
// label sets (never a node, client, subscriber, query, session or version
// identity as a label value), and registration shapes that cannot mint
// unbounded series.
package obsdiscipline

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "obsdiscipline",
	Doc: `enforce metric naming and label-cardinality rules at obs registration sites

Every call that registers (or fetches) an instrument — obs.GetCounter,
obs.GetGauge, obs.GetHistogram, and the Counter/Gauge/Histogram methods of
obs.Registry — is checked:

  - the metric name must be a constant string, snake_case, prefixed air_;
    counters must end in _total (Prometheus convention, DESIGN.md §10);
  - the help string must be a non-empty constant;
  - label pairs must be statically visible (no slice-spread), keys constant
    snake_case strings, and label values must not derive from unbounded
    identity spaces: an expression mentioning a node/client/subscriber/
    query/session/version/seed/address identifier is reported;
  - registration inside a loop or go statement is reported unless every
    label key is from the closed bounded set (channel, method, kind,
    scheme, shard, level, mode, result): loops over anything else mint
    series per iteration.

The registry is registration-idempotent, so re-registration is not a
correctness bug — these rules exist to bound cardinality and keep
registration off hot paths. There is deliberately no opt-out directive:
a metric that cannot satisfy them needs a design review, not an
annotation.`,
	Run: run,
}

// registerFuncs maps the obs registration entry points to the index of
// their name/help/label arguments. Matching is by function name within a
// package whose path ends in "obs" (the real internal/obs, or a fixture).
var registerFuncs = map[string]bool{
	"GetCounter": true, "GetGauge": true, "GetHistogram": true,
	"Counter": true, "Gauge": true, "Histogram": true,
}

var (
	nameRE = regexp.MustCompile(`^air_[a-z0-9]+(_[a-z0-9]+)*$`)
	keyRE  = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
)

// identityWords are label-value identifier words that name unbounded
// spaces. An identifier is split camelCase/snake_case and matched whole-
// word, so "nodeID" and "client_id" hit while "method" and "channel" pass.
var identityWords = map[string]bool{
	"node": true, "client": true, "subscriber": true, "query": true,
	"session": true, "version": true, "seed": true, "addr": true,
	"address": true, "host": true, "uid": true, "guid": true,
}

// boundedKeys are the closed label-key vocabulary under which registration
// in a loop is acceptable (the loop is over a deployment-bounded set).
var boundedKeys = map[string]bool{
	"channel": true, "method": true, "kind": true, "scheme": true,
	"shard": true, "level": true, "mode": true, "result": true,
}

func run(pass *analysis.Pass) (any, error) {
	// The obs package itself is the implementation: its forwarding shims
	// necessarily pass dynamic names through to the registry. The rules
	// bind registration call sites in every other package.
	if p := pass.Pkg.Path(); p == "obs" || strings.HasSuffix(p, "/obs") {
		return nil, nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		analysis.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, hist, ok := registrationCall(pass.TypesInfo, call)
			if !ok {
				return true
			}
			checkRegistration(pass, call, name, hist, stack)
			return true
		})
	}
	return nil, nil
}

// registrationCall reports whether call registers an obs instrument,
// returning the called function's name and whether it is a histogram
// (whose bounds argument sits between help and labels).
func registrationCall(info *types.Info, call *ast.CallExpr) (string, bool, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !registerFuncs[fn.Name()] {
		return "", false, false
	}
	path := fn.Pkg().Path()
	if path != "obs" && !strings.HasSuffix(path, "/obs") {
		return "", false, false
	}
	// Package-level Get* or a method on Registry; both have (name, help,
	// [bounds,] labels...) shapes. Anything else named Counter on an obs
	// type would be a method with a different signature — filter by the
	// first parameter being a string.
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() < 2 {
		return "", false, false
	}
	if b, ok := sig.Params().At(0).Type().Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
		return "", false, false
	}
	return fn.Name(), strings.Contains(fn.Name(), "Histogram"), true
}

func checkRegistration(pass *analysis.Pass, call *ast.CallExpr, fnName string, hist bool, stack []ast.Node) {
	info := pass.TypesInfo
	reportf := func(n ast.Node, format string, args ...any) {
		pass.Report(analysis.Diagnostic{
			Pos: n.Pos(), End: n.End(), Category: "obsdiscipline",
			Message: fmt.Sprintf(format, args...),
		})
	}
	if len(call.Args) < 2 {
		return
	}

	// Metric name: constant, air_-prefixed, snake_case, _total counters.
	name, nameConst := constString(info, call.Args[0])
	if !nameConst {
		reportf(call.Args[0], "metric name must be a constant string (dynamic names are unbounded series)")
	} else {
		if !nameRE.MatchString(name) {
			reportf(call.Args[0], "metric name %q must be snake_case with the air_ prefix (DESIGN.md §10)", name)
		}
		if strings.Contains(fnName, "Counter") && !strings.HasSuffix(name, "_total") {
			reportf(call.Args[0], "counter %q must end in _total (Prometheus counter convention)", name)
		}
		if !strings.Contains(fnName, "Counter") && strings.HasSuffix(name, "_total") {
			reportf(call.Args[0], "%s %q: the _total suffix is reserved for counters", strings.ToLower(strings.TrimPrefix(fnName, "Get")), name)
		}
	}

	// Help string: non-empty constant.
	if help, ok := constString(info, call.Args[1]); !ok {
		reportf(call.Args[1], "metric help must be a constant string")
	} else if strings.TrimSpace(help) == "" {
		reportf(call.Args[1], "metric help must not be empty")
	}

	// Label pairs.
	labelStart := 2
	if hist {
		labelStart = 3 // bounds slice sits between help and labels
	}
	var keys []string
	if len(call.Args) > labelStart {
		if call.Ellipsis.IsValid() {
			reportf(call.Args[len(call.Args)-1], "label set must be spelled literally at the registration site, not spread from a slice")
			return
		}
		labels := call.Args[labelStart:]
		if len(labels)%2 != 0 {
			reportf(call, "odd label argument count: labels are (key, value) pairs")
		}
		for i, arg := range labels {
			if i%2 == 0 { // key
				key, ok := constString(info, arg)
				if !ok {
					reportf(arg, "label key must be a constant string")
					continue
				}
				keys = append(keys, key)
				if !keyRE.MatchString(key) {
					reportf(arg, "label key %q must be snake_case", key)
				}
				continue
			}
			// value
			if _, ok := constString(info, arg); ok {
				continue
			}
			if id := identityIdent(info, arg); id != "" {
				reportf(arg, "label value derives from %q: node/client/query/session/version identities are unbounded label spaces (DESIGN.md §10)", id)
			}
		}
	}

	// Registration shape: loops and go statements mint series.
	if loop := enclosingLoopOrGo(stack); loop != "" {
		for _, k := range keys {
			if !boundedKeys[k] {
				reportf(call, "registration inside a %s with label key %q outside the bounded vocabulary mints unbounded series; hoist it or use a bounded key", loop, k)
				break
			}
		}
		if len(keys) == 0 {
			reportf(call, "unlabeled registration inside a %s re-registers the same series per iteration; hoist it to package level", loop)
		}
	}
}

// constString returns the constant string value of e, if it has one.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// identityIdent scans an expression for identifiers whose name contains an
// identity word (nodeID, clientAddr, ...), returning the first offender.
func identityIdent(info *types.Info, e ast.Expr) string {
	found := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		for _, w := range splitWords(id.Name) {
			if identityWords[w] {
				found = id.Name
				return false
			}
		}
		return true
	})
	return found
}

// splitWords breaks an identifier into lowercase words on underscores and
// camelCase boundaries ("nodeID" -> node, id; "client_addr" -> client, addr).
func splitWords(s string) []string {
	var words []string
	var cur []rune
	flush := func() {
		if len(cur) > 0 {
			words = append(words, strings.ToLower(string(cur)))
			cur = cur[:0]
		}
	}
	runes := []rune(s)
	for i, r := range runes {
		switch {
		case r == '_':
			flush()
		case r >= 'A' && r <= 'Z':
			// Boundary before an upper rune following a lower rune, or an
			// upper rune followed by a lower one (end of an acronym).
			if i > 0 && (isLower(runes[i-1]) || (i+1 < len(runes) && isLower(runes[i+1]))) {
				flush()
			}
			cur = append(cur, r)
		default:
			cur = append(cur, r)
		}
	}
	flush()
	return words
}

func isLower(r rune) bool { return r >= 'a' && r <= 'z' }

// enclosingLoopOrGo names the innermost enclosing loop or go statement, or
// returns "".
func enclosingLoopOrGo(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return "loop"
		case *ast.GoStmt:
			return "go statement"
		case *ast.FuncDecl, *ast.FuncLit:
			// A func literal boundary: the loop outside it runs the
			// literal, not the registration, at unknown cadence — keep
			// scanning only through immediate syntactic loops.
			return ""
		}
	}
	return ""
}
