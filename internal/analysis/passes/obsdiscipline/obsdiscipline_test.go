package obsdiscipline_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/obsdiscipline"
)

func TestRegistrationRules(t *testing.T) {
	analysistest.Run(t, "testdata", obsdiscipline.Analyzer, "metrics")
}

// TestFalsePositives locks in the calibrated-clean registration shapes:
// any diagnostic in the metricsfp fixture is a regression.
func TestFalsePositives(t *testing.T) {
	analysistest.Run(t, "testdata", obsdiscipline.Analyzer, "metricsfp")
}
