// Package metricsfp locks in calibrated-clean registration shapes for the
// obsdiscipline analyzer, mirrored from the real tree (airserve's
// package-level instruments, the broadcast multichannel teardown, scheme-
// labeled comparisons). Any diagnostic in this file is a false positive
// and a regression.
package metricsfp

import (
	"strconv"

	"obs"
)

// Package-level registration, the preferred shape: one series, zero
// registrations on any hot path.
var (
	framesTotal = obs.GetCounter("air_frames_total", "frames decoded off the wire")
	lagSeconds  = obs.GetGauge("air_lag_seconds", "staleness of the freshest cycle")
	tuneSeconds = obs.GetHistogram("air_tune_seconds", "tuning latency",
		[]float64{0.001, 0.01, 0.1, 1})
)

const schemeLabel = "scheme"

// perScheme registers one labeled series per air-index scheme: the key is
// in the bounded vocabulary and the value set is closed.
func perScheme(schemes []string) []*obs.Counter {
	out := make([]*obs.Counter, 0, len(schemes))
	for _, s := range schemes {
		out = append(out, obs.GetCounter("air_scheme_wins_total", "comparison wins", schemeLabel, s))
	}
	return out
}

// multichannelClose mirrors the broadcast teardown: per-channel gauges
// keyed by the bounded "channel" label, indexed numerically.
func multichannelClose(channels int) {
	for i := 0; i < channels; i++ {
		obs.GetGauge("air_channel_backlog", "frames queued per channel",
			"channel", strconv.Itoa(i)).Add(0)
	}
}

// methodical uses identifiers containing identity words as substrings of
// longer words ("methodical", "hostile" would be wrong to flag is the
// point: whole-word matching only).
func methodical(methodicalMode string, hostileRetries float64) {
	framesTotal.Inc()
	lagSeconds.Add(hostileRetries)
	tuneSeconds.Observe(0.5)
	obs.GetCounter("air_mode_flips_total", "mode flips", "mode", methodicalMode).Inc()
}
