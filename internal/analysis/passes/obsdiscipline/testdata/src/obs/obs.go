// Package obs is a stub of the repo's internal/obs registration surface,
// just enough for the obsdiscipline fixtures to typecheck. The analyzer
// matches registration calls by function name within any package whose
// import path ends in "obs", so this stub binds exactly like the real one.
// (The stub itself is exempt: the analyzer skips the obs package.)
package obs

type Counter struct{ n uint64 }

func (c *Counter) Inc() { c.n++ }

type Gauge struct{ v float64 }

func (g *Gauge) Add(d float64) { g.v += d }

type Histogram struct{ sum float64 }

func (h *Histogram) Observe(v float64) { h.sum += v }

func GetCounter(name, help string, labels ...string) *Counter { return &Counter{} }

func GetGauge(name, help string, labels ...string) *Gauge { return &Gauge{} }

func GetHistogram(name, help string, bounds []float64, labels ...string) *Histogram {
	return &Histogram{}
}
