// Package metrics exercises the obsdiscipline analyzer's naming, label,
// and registration-shape rules.
package metrics

import (
	"strconv"

	"obs"
)

// Each violating call is split across lines so exactly one diagnostic
// lands per want line.

func badNames(suffix string) {
	_ = obs.GetCounter(
		"air_frames", // want `counter "air_frames" must end in _total`
		"frames seen")
	_ = obs.GetCounter(
		"Air_Frames_total", // want `must be snake_case with the air_ prefix`
		"frames seen")
	_ = obs.GetCounter(
		"air_frames_"+suffix, // want `metric name must be a constant string`
		"frames seen")
	_ = obs.GetGauge(
		"air_drops_total", // want `the _total suffix is reserved for counters`
		"drops in flight")
}

func badHelp(help string) {
	_ = obs.GetCounter("air_ticks_total",
		"") // want `metric help must not be empty`
	_ = obs.GetCounter("air_tocks_total",
		help) // want `metric help must be a constant string`
}

func badLabels(nodeName, method string, pairs []string) {
	_ = obs.GetCounter("air_sends_total", "sends", // want `odd label argument count`
		"channel")
	_ = obs.GetCounter("air_recvs_total", "recvs",
		method, // want `label key must be a constant string`
		"get")
	_ = obs.GetCounter("air_acks_total", "acks",
		"Channel", // want `label key "Channel" must be snake_case`
		"news")
	_ = obs.GetCounter("air_peers_total", "peers", "peer",
		nodeName) // want `label value derives from "nodeName"`
	_ = obs.GetCounter("air_bulk_total", "bulk",
		pairs...) // want `label set must be spelled literally at the registration site`
}

func loops(peers []string) {
	for _, p := range peers {
		c := obs.GetCounter("air_peer_sends_total", "sends", "peer", p) // want `registration inside a loop with label key "peer" outside the bounded vocabulary`
		c.Inc()
	}
	for range peers {
		obs.GetCounter("air_loop_ticks_total", "ticks").Inc() // want `unlabeled registration inside a loop re-registers the same series per iteration`
	}
	// Bounded vocabulary: a loop over channels is a deployment-bounded set.
	for i := 0; i < 4; i++ {
		obs.GetCounter("air_channel_frames_total", "frames", "channel", strconv.Itoa(i)).Inc()
	}
}

func histograms(bounds []float64) {
	_ = obs.GetHistogram("air_tune_seconds", "tuning latency", bounds, "scheme", "hiti")
	_ = obs.GetGauge(
		"air_lag_seconds_total", // want `the _total suffix is reserved for counters`
		"lag")
	_ = obs.GetHistogram(
		"air_wait_seconds_total", // want `the _total suffix is reserved for counters`
		"wait", bounds)
}
