// Package noallocpin cross-checks the repo's two zero-allocation registries
// against each other: the //air:noalloc annotations (checked statically by
// the airvet noalloc analyzer) and the testing.AllocsPerRun(...)=0 pins
// (checked at runtime by the package tests). A function pinned but not
// annotated escapes static checking; a function annotated but not pinned
// claims a property nothing verifies. Both directions fail this test.
package noallocpin

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// exceptions lists functions allowed to carry //air:noalloc without an
// AllocsPerRun pin (or vice versa), each with the reason. Keep it empty
// unless a pin is genuinely impossible to express.
var exceptions = map[string]string{}

func TestNoallocAnnotationsMatchAllocsPerRunPins(t *testing.T) {
	root := repoRoot(t)
	fset := token.NewFileSet()

	type pkgFacts struct {
		declared  map[string]bool // funcs/methods declared in non-test files
		annotated map[string]bool // //air:noalloc carriers
		pinned    map[string]bool // called inside an AllocsPerRun closure
	}
	facts := map[string]*pkgFacts{} // keyed by package dir relative to root

	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		pf := facts[rel]
		if pf == nil {
			pf = &pkgFacts{declared: map[string]bool{}, annotated: map[string]bool{}, pinned: map[string]bool{}}
			facts[rel] = pf
		}
		if strings.HasSuffix(path, "_test.go") {
			collectPins(f, pf.pinned)
			return nil
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			pf.declared[fn.Name.Name] = true
			if analysis.FuncDirective(fn, analysis.DirNoAlloc) {
				pf.annotated[fn.Name.Name] = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, dir := range sortedKeys(facts) {
		pf := facts[dir]
		for _, name := range sortedKeys(pf.pinned) {
			if !pf.declared[name] {
				continue // a cross-package or builtin call inside the closure
			}
			key := dir + "." + name
			if !pf.annotated[name] && exceptions[key] == "" {
				t.Errorf("%s: %s is pinned by an AllocsPerRun test but not annotated //air:noalloc — annotate it so airvet checks the body", dir, name)
			}
		}
		for _, name := range sortedKeys(pf.annotated) {
			key := dir + "." + name
			if !pf.pinned[name] && exceptions[key] == "" {
				t.Errorf("%s: %s is annotated //air:noalloc but no AllocsPerRun test in the package pins it — add a pin or an exception with a reason", dir, name)
			}
		}
	}
}

// collectPins records the names called inside testing.AllocsPerRun closures.
func collectPins(f *ast.File, pinned map[string]bool) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "AllocsPerRun" {
			return true
		}
		lit, ok := call.Args[1].(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := inner.Fun.(type) {
			case *ast.Ident:
				pinned[fun.Name] = true
			case *ast.SelectorExpr:
				pinned[fun.Sel.Name] = true
			}
			return true
		})
		return true
	})
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
