// Package analysis is the repo's static-analysis core: a dependency-free
// reimplementation of the golang.org/x/tools/go/analysis surface (Analyzer,
// Pass, Diagnostic, SuggestedFix) that the airvet suite is written against.
//
// The module is deliberately dependency-free (go.mod lists nothing), so the
// real x/tools framework is not available; this package mirrors its API
// shape closely enough that the analyzers in passes/* would compile against
// the upstream types with only an import swap. The drivers live next door:
// load.go resolves and typechecks packages with the standard library's
// source importer, and cmd/airvet runs the suite standalone or under
// `go vet -vettool` (the unitchecker .cfg protocol).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one analysis: a named rule set over a typechecked
// package. Mirrors x/tools go/analysis.Analyzer (modular facts omitted —
// every airvet rule is intra-package).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters. By
	// convention it is a single lowercase word.
	Name string

	// Doc is the analyzer's documentation: first line is a summary, the
	// rest explains the rule and its opt-out directive.
	Doc string

	// Run applies the analyzer to one package and reports diagnostics
	// through the pass. The result value is returned to the driver (unused
	// by airvet's analyzers; kept for API parity).
	Run func(*Pass) (any, error)
}

// A Pass is one analyzer applied to one package: the syntax, type
// information and reporting sink for a single Analyzer.Run call.
type Pass struct {
	Analyzer *Analyzer

	// Fset positions every file in Files.
	Fset *token.FileSet

	// Files is the package's syntax, test files included when the driver
	// loaded them. Analyzers that exempt tests skip files whose name ends
	// in _test.go (see IsTestFile).
	Files []*ast.File

	// Pkg is the typechecked package.
	Pkg *types.Package

	// TypesInfo holds the package's type facts. It is always non-nil, but
	// may be partially filled if the package had type errors (the driver
	// reports those separately).
	TypesInfo *types.Info

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportRangef reports a diagnostic spanning n with a formatted message.
func (p *Pass) ReportRangef(n ast.Node, format string, args ...any) {
	p.Report(Diagnostic{Pos: n.Pos(), End: n.End(), Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding: a position, a message, and optionally a
// machine-applicable fix.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // optional: defaults to Pos
	Category string    // optional: a rule name within the analyzer
	Message  string

	// SuggestedFixes are safe, mechanical edits that resolve the finding
	// (applied by `airvet -fix`). Fixes must not change behavior — airvet
	// only attaches one where the replacement is provably equivalent (e.g.
	// a re-spelled wire literal replaced by the named constant).
	SuggestedFixes []SuggestedFix
}

// A SuggestedFix is one alternative edit set resolving a diagnostic.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// A TextEdit replaces source in the interval [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// The determinism, noalloc and frameconst rules bind the shipped system,
// not its tests: tests legitimately read wall clocks, allocate, and
// re-spell wire bytes to assert the format from outside.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	f := fset.File(pos)
	if f == nil {
		return false
	}
	name := f.Name()
	const suffix = "_test.go"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}
