// Package load resolves and typechecks packages for the airvet analyzers
// without go/packages (the module is dependency-free): module packages are
// parsed from source and typechecked with go/types, standard-library
// imports go through the standard library's own source importer
// (importer.ForCompiler "source"), and analysistest fixtures resolve
// GOPATH-style under extra source roots.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Package is one loaded, typechecked package: what a driver hands each
// analyzer as a Pass.
type Package struct {
	Path  string // import path ("repro/internal/packet")
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// TypeErrors holds soft typechecking errors. Analysis proceeds on the
	// partial information; drivers surface these separately.
	TypeErrors []error
}

// A Loader loads packages of one module (plus optional GOPATH-style extra
// roots for test fixtures), memoizing by import path so shared dependencies
// typecheck once per process.
type Loader struct {
	ModDir  string // module root (directory holding go.mod)
	ModPath string // module path from go.mod
	Fset    *token.FileSet

	// ExtraRoots are additional source roots resolved GOPATH-style: an
	// import path "p" maps to <root>/p if that directory exists. Used by
	// analysistest for testdata/src fixtures. Extra roots win over the
	// standard library so fixtures can stub dependency packages.
	ExtraRoots []string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module containing dir: it walks
// up from dir to the nearest go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir := abs
	for {
		if _, err := os.Stat(filepath.Join(modDir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(modDir)
		if parent == modDir {
			return nil, fmt.Errorf("load: no go.mod at or above %s", abs)
		}
		modDir = parent
	}
	data, err := os.ReadFile(filepath.Join(modDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := modulePath(string(data))
	if modPath == "" {
		return nil, fmt.Errorf("load: no module directive in %s/go.mod", modDir)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModDir:  modDir,
		ModPath: modPath,
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// modulePath extracts the module path from go.mod contents.
func modulePath(mod string) string {
	for _, line := range strings.Split(mod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// dirFor maps an import path to a source directory, or "" when the path is
// not module-local and not under an extra root (i.e. standard library).
func (l *Loader) dirFor(path string) string {
	if path == l.ModPath {
		return l.ModDir
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.ModDir, filepath.FromSlash(rest))
	}
	for _, root := range l.ExtraRoots {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir
		}
	}
	return ""
}

// PathFor maps a source directory to its import path.
func (l *Loader) PathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for _, root := range l.ExtraRoots {
		if rest, ok := cutDirPrefix(abs, root); ok {
			return filepath.ToSlash(rest), nil
		}
	}
	if abs == l.ModDir {
		return l.ModPath, nil
	}
	if rest, ok := cutDirPrefix(abs, l.ModDir); ok {
		return l.ModPath + "/" + filepath.ToSlash(rest), nil
	}
	return "", fmt.Errorf("load: %s is outside module %s", abs, l.ModDir)
}

func cutDirPrefix(path, root string) (string, bool) {
	prefix := root + string(filepath.Separator)
	if strings.HasPrefix(path, prefix) {
		return path[len(prefix):], true
	}
	return "", false
}

// Load loads, parses and typechecks the package in dir (and, recursively,
// its module-local dependencies).
func (l *Loader) Load(dir string) (*Package, error) {
	path, err := l.PathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.loadPath(path)
}

func (l *Loader) loadPath(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("load: %q is not module-local", path)
	}
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Info: newInfo()}
	conf := types.Config{
		Importer: importerFunc(l.importFor(path)),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if len(pkg.TypeErrors) < 20 {
				pkg.TypeErrors = append(pkg.TypeErrors, err)
			}
		},
	}
	// Check returns the (possibly incomplete) package even on error; soft
	// errors are already collected via conf.Error.
	tpkg, _ := conf.Check(path, l.Fset, files, pkg.Info)
	pkg.Types = tpkg
	l.pkgs[path] = pkg
	return pkg, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// importFor returns the import function used while typechecking importer
// (module-local and fixture paths load from source here; everything else is
// the standard library, delegated to the stdlib source importer).
func (l *Loader) importFor(importer string) func(string) (*types.Package, error) {
	return func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if l.dirFor(path) != "" {
			pkg, err := l.loadPath(path)
			if err != nil {
				return nil, err
			}
			if pkg.Types == nil {
				return nil, fmt.Errorf("load: %q did not typecheck (imported by %s)", path, importer)
			}
			return pkg.Types, nil
		}
		return l.std.Import(path)
	}
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Expand resolves package patterns relative to dir into package
// directories: "./..." and "dir/..." walk recursively (skipping testdata,
// hidden and underscore directories), anything else names one directory.
// Directories with no buildable non-test Go files are silently skipped on
// walks and reported as errors when named explicitly.
func Expand(dir string, patterns []string) ([]string, error) {
	var out []string
	seen := map[string]bool{}
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, pat := range patterns {
		if root, ok := strings.CutSuffix(pat, "..."); ok {
			root = strings.TrimSuffix(root, "/")
			if root == "" || root == "." {
				root = dir
			} else if !filepath.IsAbs(root) {
				root = filepath.Join(dir, root)
			}
			err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasBuildableGo(p) {
					add(p)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		p := pat
		if !filepath.IsAbs(p) {
			p = filepath.Join(dir, p)
		}
		if !hasBuildableGo(p) {
			return nil, fmt.Errorf("load: no buildable Go files in %s", p)
		}
		add(p)
	}
	sort.Strings(out)
	return out, nil
}

func hasBuildableGo(dir string) bool {
	bp, err := build.ImportDir(dir, 0)
	return err == nil && len(bp.GoFiles) > 0
}
