// Package analysistest runs one analyzer over GOPATH-style fixture packages
// and matches its diagnostics against // want "regexp" comments, mirroring
// golang.org/x/tools/go/analysis/analysistest for the repo's dependency-free
// analysis framework.
//
// Fixture layout, relative to the analyzer's test:
//
//	testdata/src/<pkg>/<file>.go
//
// Every line expecting diagnostics carries a trailing comment of the form
// `// want "re"` (several strings for several diagnostics on one line); the
// regexp must match the diagnostic message. A fixture package importing
// "stub" resolves stub from testdata/src/stub — fixtures can stand in for
// real dependencies (a fake obs, a fake packet) without touching them.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// Run applies the analyzer to each fixture package under dir/src and reports
// every mismatch between expected and actual diagnostics through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader, err := load.NewLoader(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader.ExtraRoots = []string{dir + "/src"}
	for _, pkgName := range pkgs {
		runOne(t, loader, a, dir+"/src/"+pkgName)
	}
}

func runOne(t *testing.T, loader *load.Loader, a *analysis.Analyzer, pkgDir string) {
	t.Helper()
	pkg, err := loader.Load(pkgDir)
	if err != nil {
		t.Errorf("analysistest: loading %s: %v", pkgDir, err)
		return
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("analysistest: %s: fixture does not typecheck: %v", pkgDir, terr)
	}
	if len(pkg.TypeErrors) > 0 {
		return
	}

	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { got = append(got, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Errorf("analysistest: %s: analyzer error: %v", pkgDir, err)
		return
	}

	wants := collectWants(t, pkg.Fset, pkg.Files)
	sort.Slice(got, func(i, j int) bool { return got[i].Pos < got[j].Pos })
	for _, d := range got {
		p := pkg.Fset.Position(d.Pos)
		key := posKey{p.Filename, p.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", p, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, w.re)
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

// wantRE extracts the quoted expectations of one want comment.
var wantRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// collectWants parses `// want "re" ...` comments, keyed by the line the
// comment starts on (for a trailing comment, the line it annotates).
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[posKey][]*want {
	t.Helper()
	wants := map[posKey][]*want{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					// A directive comment occupies the whole trailing
					// comment, so fixtures that expect a diagnostic on the
					// directive itself (e.g. a missing justification) embed
					// the expectation after it: //air:foo want "re".
					if !strings.HasPrefix(c.Text, "//air:") {
						continue
					}
					if _, rest, found := strings.Cut(c.Text, " want "); found {
						text = rest
					} else {
						continue
					}
				}
				p := fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(text, -1) {
					pat := q
					if pat[0] == '"' {
						unq, err := strconv.Unquote(pat)
						if err != nil {
							t.Errorf("%s: bad want string %s: %v", p, q, err)
							continue
						}
						pat = unq
					} else {
						pat = pat[1 : len(pat)-1]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %s: %v", p, q, err)
						continue
					}
					key := posKey{p.Filename, p.Line}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}

// RunFixSuggestions applies every suggested fix the analyzer produces for
// the fixture package and returns the fixed rendering of each file, keyed by
// base filename — drivers and tests assert on the result without touching
// the fixture on disk.
func RunFixSuggestions(t *testing.T, dir string, a *analysis.Analyzer, pkgName string) map[string]string {
	t.Helper()
	loader, err := load.NewLoader(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader.ExtraRoots = []string{dir + "/src"}
	pkg, err := loader.Load(dir + "/src/" + pkgName)
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", pkgName, err)
	}
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analysistest: analyzer error: %v", err)
	}

	type edit struct {
		start, end int
		newText    string
	}
	perFile := map[string][]edit{}
	for _, d := range diags {
		for _, fix := range d.SuggestedFixes {
			for _, e := range fix.TextEdits {
				p, q := pkg.Fset.Position(e.Pos), pkg.Fset.Position(e.End)
				perFile[p.Filename] = append(perFile[p.Filename], edit{p.Offset, q.Offset, string(e.NewText)})
			}
		}
	}
	out := map[string]string{}
	for file, edits := range perFile {
		sort.Slice(edits, func(i, j int) bool { return edits[i].start < edits[j].start })
		src, err := readFile(file)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		var b strings.Builder
		last := 0
		for _, e := range edits {
			if e.start < last {
				t.Fatalf("analysistest: overlapping fixes in %s", file)
			}
			b.WriteString(src[last:e.start])
			b.WriteString(e.newText)
			last = e.end
		}
		b.WriteString(src[last:])
		out[baseName(file)] = b.String()
	}
	return out
}

func baseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func readFile(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("reading %s: %w", path, err)
	}
	return string(data), nil
}
