package analysis

import "go/ast"

// WithStack traverses the AST rooted at root in depth-first order, calling
// fn at each node with the path of ancestors (outermost first, ending in n
// itself). Returning false prunes the subtree. The stack slice is reused
// between calls; callers that retain it must copy.
func WithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !fn(n, stack) {
			// Pruned subtrees get no post-order nil callback: pop now.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}
