package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// The repo's analyzer directives ride ordinary comments with the
// machine-readable `//air:` prefix (no space, like //go: directives):
//
//	//air:deterministic
//	    File-level: marks the enclosing package deterministic for the
//	    determinism analyzer, in addition to the built-in package list.
//	//air:noalloc
//	    In a function's doc comment: the function is a pinned zero-alloc
//	    hot path; the noalloc analyzer checks its body.
//	//air:nondeterministic "justification"
//	    On (or immediately above) a line: suppresses determinism findings
//	    for that line. The justification string is mandatory.
//	//air:alloc-ok "justification"
//	    On (or immediately above) a line inside an //air:noalloc function:
//	    suppresses noalloc findings for that line. Justification mandatory.
const (
	DirDeterministic    = "deterministic"
	DirNoAlloc          = "noalloc"
	DirNondeterministic = "nondeterministic"
	DirAllocOK          = "alloc-ok"
)

// A Directive is one parsed //air: comment.
type Directive struct {
	Pos  token.Pos
	Name string // e.g. "nondeterministic"
	Arg  string // unquoted justification, "" if absent
	Raw  string // argument text as written (diagnosed when unquotable)
}

// Directives holds every //air: directive of one file, indexed by the line
// the comment sits on.
type Directives struct {
	fset   *token.FileSet
	byLine map[int][]Directive
	all    []Directive
}

// ParseDirectives collects the //air: directives of a file. The file must
// have been parsed with parser.ParseComments.
func ParseDirectives(fset *token.FileSet, file *ast.File) *Directives {
	d := &Directives{fset: fset, byLine: map[int][]Directive{}}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			dir, ok := parseDirective(c)
			if !ok {
				continue
			}
			line := fset.Position(c.Pos()).Line
			d.byLine[line] = append(d.byLine[line], dir)
			d.all = append(d.all, dir)
		}
	}
	return d
}

func parseDirective(c *ast.Comment) (Directive, bool) {
	const prefix = "//air:"
	if !strings.HasPrefix(c.Text, prefix) {
		return Directive{}, false
	}
	rest := strings.TrimPrefix(c.Text, prefix)
	name, arg, _ := strings.Cut(rest, " ")
	dir := Directive{Pos: c.Pos(), Name: strings.TrimSpace(name), Raw: strings.TrimSpace(arg)}
	if unq, err := strconv.Unquote(dir.Raw); err == nil {
		dir.Arg = unq
	}
	return dir, true
}

// All returns every directive in the file.
func (d *Directives) All() []Directive { return d.all }

// Has reports whether the file carries a directive with the given name
// anywhere (used for file/package-level markers like //air:deterministic).
func (d *Directives) Has(name string) bool {
	for _, dir := range d.all {
		if dir.Name == name {
			return true
		}
	}
	return false
}

// SuppressedAt reports whether a finding at pos is suppressed by a
// directive of the given name on the same line or the line immediately
// above. The returned Directive is valid only when suppressed.
func (d *Directives) SuppressedAt(name string, pos token.Pos) (Directive, bool) {
	line := d.fset.Position(pos).Line
	for _, candidate := range [...]int{line, line - 1} {
		for _, dir := range d.byLine[candidate] {
			if dir.Name == name {
				return dir, true
			}
		}
	}
	return Directive{}, false
}

// CheckJustified reports suppression directives that are missing their
// mandatory justification string: an unexplained opt-out is itself a
// finding. Analyzers that honor a suppression directive call this once per
// file with the directive names they accept.
func CheckJustified(pass *Pass, d *Directives, names ...string) {
	for _, dir := range d.all {
		for _, name := range names {
			if dir.Name != name {
				continue
			}
			if dir.Arg == "" {
				pass.Report(Diagnostic{
					Pos:      dir.Pos,
					Category: "directive",
					Message:  "//air:" + name + " requires a quoted justification string, e.g. //air:" + name + ` "build-time stats only"`,
				})
			}
		}
	}
}

// FuncDirective reports whether fn's doc comment carries the named
// directive (e.g. //air:noalloc).
func FuncDirective(fn *ast.FuncDecl, name string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if dir, ok := parseDirective(c); ok && dir.Name == name {
			return true
		}
	}
	return false
}
