// Package suite enumerates the airvet analyzers in their canonical order.
// The driver (cmd/airvet), the analysistest fixtures and the annotation
// cross-check tests all draw from this one list so an analyzer cannot be
// registered in one place and forgotten in another.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/passes/determinism"
	"repro/internal/analysis/passes/frameconst"
	"repro/internal/analysis/passes/noalloc"
	"repro/internal/analysis/passes/obsdiscipline"
)

// Analyzers returns the full airvet suite, ordered by name. The slice is
// freshly allocated; callers may filter it in place.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		frameconst.Analyzer,
		noalloc.Analyzer,
		obsdiscipline.Analyzer,
	}
}
