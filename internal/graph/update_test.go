package graph

import (
	"math"
	"testing"
)

// diamond builds a 4-node test graph with bidirectional edges
// 0-1 (w 1), 0-2 (w 2), 1-3 (w 3), 2-3 (w 1) and the one-way arc 0->3 (w 9).
func diamond(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(4, 9)
	for i := 0; i < 4; i++ {
		b.AddNode(float64(i), 0)
	}
	b.AddEdge(0, 1, 1)
	b.AddEdge(0, 2, 2)
	b.AddEdge(1, 3, 3)
	b.AddEdge(2, 3, 1)
	b.AddArc(0, 3, 9)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestWithWeights(t *testing.T) {
	g := diamond(t)
	g2, err := g.WithWeights([]WeightUpdate{
		{From: 0, To: 1, Weight: 5},   // one direction only
		{From: 0, To: 3, Weight: 0.5}, // the one-way arc
		{From: 2, To: 3, Weight: 1},   // no-op
	})
	if err != nil {
		t.Fatal(err)
	}
	// The mutated copy reflects the updates, forward and reverse.
	if w, _ := g2.ArcWeight(0, 1); w != 5 {
		t.Fatalf("0->1 = %v, want 5", w)
	}
	if w, _ := g2.ArcWeight(1, 0); w != 1 {
		t.Fatalf("1->0 = %v, want 1 (only the 0->1 direction was updated)", w)
	}
	if w, _ := g2.ArcWeight(0, 3); w != 0.5 {
		t.Fatalf("0->3 = %v, want 0.5", w)
	}
	src, wgts := g2.In(1)
	for i, s := range src {
		if s == 0 && wgts[i] != 5 {
			t.Fatalf("reverse CSR of 0->1 = %v, want 5", wgts[i])
		}
	}
	// The original is untouched and topology arrays are shared.
	if w, _ := g.ArcWeight(0, 1); w != 1 {
		t.Fatalf("original mutated: 0->1 = %v", w)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumArcs() != g.NumArcs() {
		t.Fatal("topology changed")
	}
	if &g2.dst[0] != &g.dst[0] || &g2.nodes[0] != &g.nodes[0] {
		t.Fatal("topology arrays copied, want shared")
	}
	if &g2.wgt[0] == &g.wgt[0] {
		t.Fatal("weight array shared, want cloned")
	}
}

func TestWithWeightsRejectsBadUpdates(t *testing.T) {
	g := diamond(t)
	cases := []struct {
		name string
		u    WeightUpdate
	}{
		{"missing arc", WeightUpdate{From: 1, To: 2, Weight: 1}},
		{"out of range", WeightUpdate{From: 0, To: 99, Weight: 1}},
		{"negative", WeightUpdate{From: 0, To: 1, Weight: -1}},
		{"NaN", WeightUpdate{From: 0, To: 1, Weight: math.NaN()}},
		{"Inf", WeightUpdate{From: 0, To: 1, Weight: math.Inf(1)}},
	}
	for _, tc := range cases {
		if _, err := g.WithWeights([]WeightUpdate{tc.u}); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	// A failed batch must not have corrupted the receiver.
	if w, _ := g.ArcWeight(0, 1); w != 1 {
		t.Fatalf("original mutated by rejected batch: %v", w)
	}
}

func TestWithWeightsParallelArcs(t *testing.T) {
	b := NewBuilder(2, 3)
	b.AddNode(0, 0)
	b.AddNode(1, 0)
	b.AddArc(0, 1, 1)
	b.AddArc(0, 1, 2) // parallel
	b.AddArc(1, 0, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := g.WithWeights([]WeightUpdate{{From: 0, To: 1, Weight: 7}})
	if err != nil {
		t.Fatal(err)
	}
	dst, wgt := g2.Out(0)
	for i := range dst {
		if wgt[i] != 7 {
			t.Fatalf("parallel arc %d kept weight %v", i, wgt[i])
		}
	}
}

func TestArcAt(t *testing.T) {
	g := diamond(t)
	seen := map[[2]NodeID]int{}
	for i := 0; i < g.NumArcs(); i++ {
		from, to, w := g.ArcAt(i)
		if got, ok := g.ArcWeight(from, to); !ok || got > w {
			t.Fatalf("arc %d: %d->%d w=%v inconsistent with ArcWeight (%v,%v)", i, from, to, w, got, ok)
		}
		seen[[2]NodeID{from, to}]++
	}
	if len(seen) != 9 || seen[[2]NodeID{0, 3}] != 1 {
		t.Fatalf("arc enumeration wrong: %v", seen)
	}
}
