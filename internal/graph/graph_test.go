package graph

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func triangle(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(3, 6)
	b.AddNode(0, 0)
	b.AddNode(1, 0)
	b.AddNode(0, 1)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 2)
	b.AddEdge(2, 0, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildBasics(t *testing.T) {
	g := triangle(t)
	if g.NumNodes() != 3 || g.NumArcs() != 6 {
		t.Fatalf("got %d nodes, %d arcs", g.NumNodes(), g.NumArcs())
	}
	dst, wgt := g.Out(0)
	if len(dst) != 2 {
		t.Fatalf("node 0 out-degree %d, want 2", len(dst))
	}
	// Adjacency sorted by target.
	if dst[0] != 1 || dst[1] != 2 {
		t.Errorf("out(0) = %v, want [1 2]", dst)
	}
	if wgt[0] != 1 || wgt[1] != 3 {
		t.Errorf("weights(0) = %v", wgt)
	}
	in, _ := g.In(0)
	if len(in) != 2 {
		t.Errorf("in-degree(0) = %d, want 2", len(in))
	}
	if g.OutDegree(1) != 2 || g.InDegree(2) != 2 {
		t.Error("degree accessors wrong")
	}
}

func TestBuildValidation(t *testing.T) {
	cases := []func(*Builder){
		func(b *Builder) { b.AddArc(0, 5, 1) },           // out of range
		func(b *Builder) { b.AddArc(0, 0, 1) },           // self loop
		func(b *Builder) { b.AddArc(0, 1, -1) },          // negative
		func(b *Builder) { b.AddArc(0, 1, math.NaN()) },  // NaN
		func(b *Builder) { b.AddArc(0, 1, math.Inf(1)) }, // Inf
		func(b *Builder) { b.AddArc(-1, 1, 1) },          // negative id
	}
	for i, corrupt := range cases {
		b := NewBuilder(2, 1)
		b.AddNode(0, 0)
		b.AddNode(1, 1)
		corrupt(b)
		if _, err := b.Build(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestArcWeight(t *testing.T) {
	g := triangle(t)
	if w, ok := g.ArcWeight(0, 1); !ok || w != 1 {
		t.Errorf("ArcWeight(0,1) = %v, %v", w, ok)
	}
	if _, ok := g.ArcWeight(0, 0); ok {
		t.Error("ArcWeight(0,0) should not exist")
	}
}

func TestBounds(t *testing.T) {
	g := triangle(t)
	minX, minY, maxX, maxY := g.Bounds()
	if minX != 0 || minY != 0 || maxX != 1 || maxY != 1 {
		t.Errorf("bounds (%v,%v,%v,%v)", minX, minY, maxX, maxY)
	}
}

func TestStronglyConnected(t *testing.T) {
	g := triangle(t)
	if err := g.CheckStronglyConnected(); err != nil {
		t.Errorf("triangle should be strongly connected: %v", err)
	}
	b := NewBuilder(3, 2)
	b.AddNode(0, 0)
	b.AddNode(1, 0)
	b.AddNode(2, 0)
	b.AddArc(0, 1, 1)
	b.AddArc(1, 0, 1)
	// node 2 isolated
	g2 := b.MustBuild()
	if err := g2.CheckStronglyConnected(); err == nil {
		t.Error("expected disconnection error")
	}
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	g := triangle(t)
	var buf bytes.Buffer
	if err := Encode(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestTextCodecRoundTrip(t *testing.T) {
	g := triangle(t)
	var buf bytes.Buffer
	if err := EncodeText(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := DecodeText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestTextCodecErrors(t *testing.T) {
	cases := []string{
		"v 1 0 0",        // out-of-order id
		"v 0 x 0",        // bad coordinate
		"a 0 1",          // short arc line
		"z what is this", // unknown record
	}
	for _, c := range cases {
		if _, err := DecodeText(strings.NewReader(c)); err == nil {
			t.Errorf("input %q: expected error", c)
		}
	}
	// Comments and blanks are fine.
	ok := "# comment\n\nn 1 0\nv 0 1 2\n"
	if _, err := DecodeText(strings.NewReader(ok)); err != nil {
		t.Errorf("valid input rejected: %v", err)
	}
}

func TestDecodeBadMagic(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("NOPE            "))); err == nil {
		t.Error("expected magic error")
	}
}

func assertSameGraph(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumArcs() != b.NumArcs() {
		t.Fatalf("size mismatch: %d/%d nodes, %d/%d arcs",
			a.NumNodes(), b.NumNodes(), a.NumArcs(), b.NumArcs())
	}
	for v := NodeID(0); int(v) < a.NumNodes(); v++ {
		na, nb := a.Node(v), b.Node(v)
		if na.X != nb.X || na.Y != nb.Y {
			t.Fatalf("node %d coords differ", v)
		}
		da, wa := a.Out(v)
		db, wb := b.Out(v)
		if len(da) != len(db) {
			t.Fatalf("node %d degree differs", v)
		}
		for i := range da {
			if da[i] != db[i] || wa[i] != wb[i] {
				t.Fatalf("node %d arc %d differs", v, i)
			}
		}
	}
}

// TestCodecRoundTripProperty: random graphs survive a binary round trip.
func TestCodecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		b := NewBuilder(n, 3*n)
		for i := 0; i < n; i++ {
			b.AddNode(r.Float64()*100, r.Float64()*100)
		}
		for e := 0; e < 2*n; e++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				b.AddArc(NodeID(u), NodeID(v), r.Float64()*10)
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := Encode(&buf, g); err != nil {
			return false
		}
		g2, err := Decode(&buf)
		if err != nil {
			return false
		}
		return g2.NumNodes() == g.NumNodes() && g2.NumArcs() == g.NumArcs()
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
