// Package graph implements the directed, weighted road-network graph that
// underlies every air-index scheme in this repository.
//
// A road network follows the paper's Section 2.1 model: a directed weighted
// graph G = (V, E) where each node carries an identifier and Euclidean
// coordinates, and each edge carries a non-negative weight (length, travel
// time, toll fee, ...). The concrete representation is a compressed sparse
// row (CSR) adjacency structure, immutable after construction, plus a
// reverse CSR for algorithms that search backwards (ArcFlag pre-computation,
// border detection on directed graphs).
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a node. IDs are dense: a graph with n nodes uses IDs
// 0..n-1.
type NodeID int32

// Invalid is the sentinel NodeID used for "no node" (e.g. absent parents in
// shortest-path trees).
const Invalid NodeID = -1

// Node is a road-network vertex: an identifier plus Euclidean coordinates,
// mirroring the paper's <id, x, y> triplets.
type Node struct {
	ID NodeID
	X  float64
	Y  float64
}

// Arc is one directed edge as seen from its tail node.
type Arc struct {
	To     NodeID
	Weight float64
}

// Graph is an immutable directed weighted graph in CSR form.
//
// The zero value is an empty graph; use a Builder or Decode to obtain a
// populated one.
type Graph struct {
	nodes []Node

	// Forward CSR.
	off []int32
	dst []NodeID
	wgt []float64

	// Reverse CSR (built eagerly; several substrates need it).
	roff []int32
	rdst []NodeID
	rwgt []float64

	minX, minY, maxX, maxY float64
}

// NumNodes returns the number of nodes.
//
//air:noalloc
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumArcs returns the number of directed arcs.
func (g *Graph) NumArcs() int { return len(g.dst) }

// Node returns the node with the given ID. It panics if id is out of range,
// consistent with slice indexing semantics.
//
//air:noalloc
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Nodes returns the underlying node slice. Callers must not modify it.
func (g *Graph) Nodes() []Node { return g.nodes }

// Out returns the outgoing arcs of v as parallel slices (targets, weights).
// The slices alias internal storage and must not be modified.
//
//air:noalloc
func (g *Graph) Out(v NodeID) ([]NodeID, []float64) {
	lo, hi := g.off[v], g.off[v+1]
	return g.dst[lo:hi], g.wgt[lo:hi]
}

// In returns the incoming arcs of v as parallel slices (sources, weights).
//
//air:noalloc
func (g *Graph) In(v NodeID) ([]NodeID, []float64) {
	lo, hi := g.roff[v], g.roff[v+1]
	return g.rdst[lo:hi], g.rwgt[lo:hi]
}

// OutDegree returns the number of outgoing arcs of v.
func (g *Graph) OutDegree(v NodeID) int { return int(g.off[v+1] - g.off[v]) }

// InDegree returns the number of incoming arcs of v.
func (g *Graph) InDegree(v NodeID) int { return int(g.roff[v+1] - g.roff[v]) }

// Bounds returns the bounding box of all node coordinates
// (minX, minY, maxX, maxY). For an empty graph all values are zero.
func (g *Graph) Bounds() (minX, minY, maxX, maxY float64) {
	return g.minX, g.minY, g.maxX, g.maxY
}

// ArcWeight returns the weight of the arc u->v and whether such an arc
// exists. With parallel arcs the minimum weight is returned.
func (g *Graph) ArcWeight(u, v NodeID) (float64, bool) {
	dst, wgt := g.Out(u)
	best, ok := math.Inf(1), false
	for i, d := range dst {
		if d == v && wgt[i] < best {
			best, ok = wgt[i], true
		}
	}
	return best, ok
}

// Builder accumulates nodes and arcs and produces an immutable Graph.
type Builder struct {
	nodes []Node
	tails []NodeID
	heads []NodeID
	wgts  []float64
}

// NewBuilder returns a Builder with capacity hints for n nodes and m arcs.
func NewBuilder(n, m int) *Builder {
	return &Builder{
		nodes: make([]Node, 0, n),
		tails: make([]NodeID, 0, m),
		heads: make([]NodeID, 0, m),
		wgts:  make([]float64, 0, m),
	}
}

// AddNode appends a node with the next dense ID and returns that ID.
func (b *Builder) AddNode(x, y float64) NodeID {
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, Node{ID: id, X: x, Y: y})
	return id
}

// AddArc appends the directed arc u->v with weight w.
func (b *Builder) AddArc(u, v NodeID, w float64) {
	b.tails = append(b.tails, u)
	b.heads = append(b.heads, v)
	b.wgts = append(b.wgts, w)
}

// AddEdge appends both directed arcs u->v and v->u with weight w; road
// segments are predominantly bidirectional.
func (b *Builder) AddEdge(u, v NodeID, w float64) {
	b.AddArc(u, v, w)
	b.AddArc(v, u, w)
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.nodes) }

// NumArcs returns the number of arcs added so far.
func (b *Builder) NumArcs() int { return len(b.tails) }

// Build validates the accumulated data and returns the immutable Graph.
// It fails on out-of-range endpoints, negative or non-finite weights, and
// self-loops (road networks have none, and shortest-path pre-computation
// assumes their absence).
func (b *Builder) Build() (*Graph, error) {
	n := len(b.nodes)
	for i := range b.tails {
		u, v, w := b.tails[i], b.heads[i], b.wgts[i]
		if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
			return nil, fmt.Errorf("graph: arc %d has endpoint out of range [0,%d): %d->%d", i, n, u, v)
		}
		if u == v {
			return nil, fmt.Errorf("graph: arc %d is a self-loop at node %d", i, u)
		}
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("graph: arc %d (%d->%d) has invalid weight %v", i, u, v, w)
		}
	}
	g := &Graph{nodes: b.nodes}
	g.off, g.dst, g.wgt = buildCSR(n, b.tails, b.heads, b.wgts)
	g.roff, g.rdst, g.rwgt = buildCSR(n, b.heads, b.tails, b.wgts)
	g.computeBounds()
	return g, nil
}

// MustBuild is Build that panics on error; intended for tests and
// generators whose inputs are correct by construction.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func buildCSR(n int, tails, heads []NodeID, wgts []float64) ([]int32, []NodeID, []float64) {
	off := make([]int32, n+1)
	for _, t := range tails {
		off[t+1]++
	}
	for i := 1; i <= n; i++ {
		off[i] += off[i-1]
	}
	dst := make([]NodeID, len(tails))
	wgt := make([]float64, len(tails))
	cur := make([]int32, n)
	copy(cur, off[:n])
	for i, t := range tails {
		p := cur[t]
		dst[p] = heads[i]
		wgt[p] = wgts[i]
		cur[t]++
	}
	// Sort each adjacency list by target for deterministic iteration order.
	for v := 0; v < n; v++ {
		lo, hi := off[v], off[v+1]
		sortArcs(dst[lo:hi], wgt[lo:hi])
	}
	return off, dst, wgt
}

func sortArcs(dst []NodeID, wgt []float64) {
	sort.Sort(&arcSorter{dst, wgt})
}

type arcSorter struct {
	dst []NodeID
	wgt []float64
}

func (s *arcSorter) Len() int { return len(s.dst) }
func (s *arcSorter) Less(i, j int) bool {
	if s.dst[i] != s.dst[j] {
		return s.dst[i] < s.dst[j]
	}
	return s.wgt[i] < s.wgt[j]
}
func (s *arcSorter) Swap(i, j int) {
	s.dst[i], s.dst[j] = s.dst[j], s.dst[i]
	s.wgt[i], s.wgt[j] = s.wgt[j], s.wgt[i]
}

func (g *Graph) computeBounds() {
	if len(g.nodes) == 0 {
		return
	}
	g.minX, g.maxX = g.nodes[0].X, g.nodes[0].X
	g.minY, g.maxY = g.nodes[0].Y, g.nodes[0].Y
	for _, nd := range g.nodes[1:] {
		g.minX = math.Min(g.minX, nd.X)
		g.maxX = math.Max(g.maxX, nd.X)
		g.minY = math.Min(g.minY, nd.Y)
		g.maxY = math.Max(g.maxY, nd.Y)
	}
}

// ErrDisconnected is reported by CheckStronglyConnected for graphs where some
// node cannot reach, or be reached from, node 0.
var ErrDisconnected = errors.New("graph: not strongly connected")

// CheckStronglyConnected verifies that every node reaches and is reached from
// node 0 (for road networks built from bidirectional segments this is plain
// connectivity). Air-index pre-computation requires it: inter-region distance
// matrices must be finite.
func (g *Graph) CheckStronglyConnected() error {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	if c := g.reachCount(0, false); c != n {
		return fmt.Errorf("%w: only %d/%d nodes reachable from node 0", ErrDisconnected, c, n)
	}
	if c := g.reachCount(0, true); c != n {
		return fmt.Errorf("%w: only %d/%d nodes reach node 0", ErrDisconnected, c, n)
	}
	return nil
}

func (g *Graph) reachCount(src NodeID, reverse bool) int {
	seen := make([]bool, g.NumNodes())
	stack := []NodeID{src}
	seen[src] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		var dst []NodeID
		if reverse {
			dst, _ = g.In(v)
		} else {
			dst, _ = g.Out(v)
		}
		for _, d := range dst {
			if !seen[d] {
				seen[d] = true
				count++
				stack = append(stack, d)
			}
		}
	}
	return count
}

// EuclideanDistance returns the straight-line distance between two nodes.
func (g *Graph) EuclideanDistance(u, v NodeID) float64 {
	a, b := g.nodes[u], g.nodes[v]
	return math.Hypot(a.X-b.X, a.Y-b.Y)
}

// Diameter estimates the graph's weighted diameter by running a double
// sweep: the eccentricity of the node farthest from an arbitrary start.
// It is a lower bound on the true diameter, adequate for sizing the
// path-length buckets of the paper's Figure 10.
func (g *Graph) Diameter(sssp func(g *Graph, src NodeID) []float64) float64 {
	if g.NumNodes() == 0 {
		return 0
	}
	dist := sssp(g, 0)
	far := NodeID(0)
	for v, d := range dist {
		if !math.IsInf(d, 1) && d > dist[far] {
			far = NodeID(v)
		}
	}
	dist = sssp(g, far)
	best := 0.0
	for _, d := range dist {
		if !math.IsInf(d, 1) && d > best {
			best = d
		}
	}
	return best
}

// OutOffset returns the global arc index of v's first outgoing arc: the arc
// at position i of Out(v) has global index OutOffset(v)+i. Global arc indexes
// identify arcs compactly (ArcFlag stores one bit vector per arc).
func (g *Graph) OutOffset(v NodeID) int { return int(g.off[v]) }
