package graph

import (
	"fmt"
	"math"
	"sort"
)

// WeightUpdate sets the weight of the directed arc From->To. It is the
// server-side mutation unit of the dynamic-network subsystem
// (internal/update): traffic feeds report per-segment travel-time changes,
// never topology changes — roads do not appear or vanish between broadcast
// cycles.
type WeightUpdate struct {
	From, To NodeID
	Weight   float64
}

// WithWeights returns a new graph identical to g except that every arc
// named by an update carries its new weight. Topology is immutable, so the
// node table and both CSR index structures are shared with g; only the two
// weight arrays are cloned. With parallel From->To arcs, all of them take
// the new weight. Updates referencing a non-existent arc, or carrying a
// negative or non-finite weight, fail — a dynamic server must reject a bad
// traffic report rather than broadcast it.
//
// Applying the same update twice, or an update restating the current weight
// (a no-op), is valid and idempotent.
func (g *Graph) WithWeights(updates []WeightUpdate) (*Graph, error) {
	out := *g // shares nodes, off, dst, roff, rdst and the bounds
	out.wgt = append([]float64(nil), g.wgt...)
	out.rwgt = append([]float64(nil), g.rwgt...)
	for i, u := range updates {
		if u.From < 0 || int(u.From) >= g.NumNodes() || u.To < 0 || int(u.To) >= g.NumNodes() {
			return nil, fmt.Errorf("graph: update %d names node out of range [0,%d): %d->%d", i, g.NumNodes(), u.From, u.To)
		}
		if u.Weight < 0 || math.IsNaN(u.Weight) || math.IsInf(u.Weight, 0) {
			return nil, fmt.Errorf("graph: update %d (%d->%d) has invalid weight %v", i, u.From, u.To, u.Weight)
		}
		if !setWeight(g.off, g.dst, out.wgt, u.From, u.To, u.Weight) {
			return nil, fmt.Errorf("graph: update %d names non-existent arc %d->%d", i, u.From, u.To)
		}
		// The reverse CSR mirrors every arc; keep it consistent.
		if !setWeight(g.roff, g.rdst, out.rwgt, u.To, u.From, u.Weight) {
			return nil, fmt.Errorf("graph: update %d: reverse CSR missing arc %d->%d", i, u.From, u.To)
		}
	}
	return &out, nil
}

// setWeight assigns w to every arc tail->head in one CSR half. Adjacency
// lists are sorted by target (buildCSR), so the run of parallel arcs is
// found by binary search.
func setWeight(off []int32, dst []NodeID, wgt []float64, tail, head NodeID, w float64) bool {
	lo, hi := int(off[tail]), int(off[tail+1])
	adj := dst[lo:hi]
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= head })
	found := false
	for ; i < len(adj) && adj[i] == head; i++ {
		wgt[lo+i] = w
		found = true
	}
	return found
}

// SameTopology reports whether g and o have identical nodes (IDs and
// coordinates) and identical arcs, weights aside: the precondition of a
// weight-only server rebuild (core's EB/NR Rebuild reuse partitions, which
// are functions of coordinates and arcs). Graphs derived via WithWeights
// share their topology arrays and hit the identity fast path; independent
// but equal graphs fall through to an O(n+m) comparison — trivial next to
// the pre-computation a rebuild runs.
func (g *Graph) SameTopology(o *Graph) bool {
	if g.NumNodes() != o.NumNodes() || g.NumArcs() != o.NumArcs() {
		return false
	}
	if g.NumNodes() == 0 {
		return true
	}
	if &g.nodes[0] == &o.nodes[0] && &g.off[0] == &o.off[0] &&
		(g.NumArcs() == 0 || &g.dst[0] == &o.dst[0]) {
		return true // shared storage (a WithWeights derivative)
	}
	for i := range g.nodes {
		if g.nodes[i] != o.nodes[i] {
			return false
		}
	}
	for i := range g.off {
		if g.off[i] != o.off[i] {
			return false
		}
	}
	for i := range g.dst {
		if g.dst[i] != o.dst[i] {
			return false
		}
	}
	return true
}

// ArcAt returns the i-th directed arc in global arc-index order (the order
// OutOffset defines): its endpoints and current weight. Workload and fuzz
// generators use it to draw uniform random arcs for weight updates.
func (g *Graph) ArcAt(i int) (from, to NodeID, weight float64) {
	v := sort.Search(g.NumNodes(), func(v int) bool { return int(g.off[v+1]) > i })
	return NodeID(v), g.dst[i], g.wgt[i]
}
