package graph

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// randomGraph builds a connected random graph with deterministic structure.
func randomGraph(t *testing.T, n, extra int, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n, 2*(n-1+extra))
	for i := 0; i < n; i++ {
		b.AddNode(rng.Float64()*1000, rng.Float64()*1000)
	}
	for i := 1; i < n; i++ {
		b.AddEdge(NodeID(rng.Intn(i)), NodeID(i), 1+rng.Float64()*10)
	}
	for i := 0; i < extra; i++ {
		u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if u != v {
			b.AddEdge(u, v, 1+rng.Float64()*10)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// equalGraphs requires structural bit-identity between two graphs: same
// nodes, CSR arrays, and bounds.
func equalGraphs(t *testing.T, heap, mapped *Graph) {
	t.Helper()
	if !reflect.DeepEqual(heap.nodes, mapped.nodes) && !(len(heap.nodes) == 0 && len(mapped.nodes) == 0) {
		t.Fatal("node slices differ")
	}
	if !reflect.DeepEqual(heap.off, mapped.off) ||
		!reflect.DeepEqual(heap.dst, mapped.dst) ||
		!reflect.DeepEqual(heap.wgt, mapped.wgt) {
		t.Fatal("forward CSR differs")
	}
	if !reflect.DeepEqual(heap.roff, mapped.roff) ||
		!reflect.DeepEqual(heap.rdst, mapped.rdst) ||
		!reflect.DeepEqual(heap.rwgt, mapped.rwgt) {
		t.Fatal("reverse CSR differs")
	}
	hx0, hy0, hx1, hy1 := heap.Bounds()
	mx0, my0, mx1, my1 := mapped.Bounds()
	if hx0 != mx0 || hy0 != my0 || hx1 != mx1 || hy1 != my1 {
		t.Fatal("bounds differ")
	}
}

// TestMappedRoundTrip: WriteMapped → OpenMapped reproduces the graph
// bit-identically, through both the aliasing fast path (aligned buffer)
// and the portable decode path (misaligned buffer).
func TestMappedRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name     string
		n, extra int
	}{{"small", 12, 5}, {"medium", 500, 300}, {"single", 2, 0}} {
		t.Run(tc.name, func(t *testing.T) {
			g := randomGraph(t, tc.n, tc.extra, int64(tc.n))
			var buf bytes.Buffer
			if err := WriteMapped(&buf, g); err != nil {
				t.Fatal(err)
			}
			if int64(buf.Len()) != MappedBytes(g) {
				t.Fatalf("MappedBytes = %d, wrote %d", MappedBytes(g), buf.Len())
			}

			// Aligned buffer: may alias.
			aligned := make([]byte, buf.Len())
			copy(aligned, buf.Bytes())
			got, err := OpenMapped(aligned)
			if err != nil {
				t.Fatal(err)
			}
			equalGraphs(t, g, got)

			// Deliberately misaligned view: must fall back to decoding and
			// still come out identical.
			backing := make([]byte, buf.Len()+1)
			copy(backing[1:], buf.Bytes())
			got2, err := OpenMapped(backing[1:])
			if err != nil {
				t.Fatal(err)
			}
			equalGraphs(t, g, got2)
		})
	}
}

// TestMappedFile: the mmap path end to end — write to a file, MapFile it,
// verify equality and that queries work, then Close.
func TestMappedFile(t *testing.T) {
	g := randomGraph(t, 200, 120, 77)
	path := filepath.Join(t.TempDir(), "net.airm")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteMapped(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	mg, err := MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	equalGraphs(t, g, mg.Graph)
	// Spot-check accessors against the heap original.
	for v := NodeID(0); int(v) < g.NumNodes(); v += 13 {
		hd, hw := g.Out(v)
		md, mw := mg.Out(v)
		if !reflect.DeepEqual(hd, md) || !reflect.DeepEqual(hw, mw) {
			t.Fatalf("Out(%d) differs", v)
		}
		if g.OutOffset(v) != mg.OutOffset(v) {
			t.Fatalf("OutOffset(%d) differs", v)
		}
	}
	if err := mg.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenMappedRejectsCorruption: damaged headers and sections must error,
// not alias garbage.
func TestOpenMappedRejectsCorruption(t *testing.T) {
	g := randomGraph(t, 50, 30, 3)
	var buf bytes.Buffer
	if err := WriteMapped(&buf, g); err != nil {
		t.Fatal(err)
	}
	base := buf.Bytes()

	damage := func(name string, mutate func([]byte)) {
		data := make([]byte, len(base))
		copy(data, base)
		mutate(data)
		if _, err := OpenMapped(data); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	damage("bad magic", func(d []byte) { d[0] = 'X' })
	damage("bad version", func(d []byte) { d[4] = 99 })
	damage("bad probe", func(d []byte) { d[24] ^= 0xFF })
	if _, err := OpenMapped(base[:len(base)/2]); err == nil {
		t.Error("truncated buffer accepted")
	}
	if _, err := OpenMapped(base[:10]); err == nil {
		t.Error("sub-header buffer accepted")
	}
	damage("out-of-range target", func(d []byte) {
		// First dst entry → absurd node id.
		n := int64(g.NumNodes())
		dstAt := int64(mappedHeader) + n*nodeRecBytes + pad8((n+1)*4)
		d[dstAt] = 0xFF
		d[dstAt+1] = 0xFF
		d[dstAt+2] = 0xFF
		d[dstAt+3] = 0x7F
	})
	damage("non-monotone offsets", func(d []byte) {
		n := int64(g.NumNodes())
		offAt := int64(mappedHeader) + n*nodeRecBytes
		d[offAt+4] = 0xEE // off[1] jumps past off[2]
		d[offAt+5] = 0xFF
	})
}

// TestMappedEmptyGraph round-trips the degenerate empty graph.
func TestMappedEmptyGraph(t *testing.T) {
	g := NewBuilder(0, 0).MustBuild()
	var buf bytes.Buffer
	if err := WriteMapped(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := OpenMapped(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 0 || got.NumArcs() != 0 {
		t.Fatalf("empty graph decoded as %d nodes, %d arcs", got.NumNodes(), got.NumArcs())
	}
}

// TestMappedReadZeroAlloc pins the mapped-graph read path at zero
// allocations per operation: Out, In and Node on an OpenMapped graph are
// pure slice views into the mapping. The //air:noalloc annotations on those
// methods (checked by airvet) and this pin must agree; see
// internal/analysis/noallocpin.
func TestMappedReadZeroAlloc(t *testing.T) {
	g := randomGraph(t, 64, 64, 7)
	var buf bytes.Buffer
	if err := WriteMapped(&buf, g); err != nil {
		t.Fatal(err)
	}
	aligned := make([]byte, buf.Len())
	copy(aligned, buf.Bytes())
	mg, err := OpenMapped(aligned)
	if err != nil {
		t.Fatal(err)
	}
	var sink float64
	if n := testing.AllocsPerRun(100, func() {
		for v := NodeID(0); int(v) < mg.NumNodes(); v++ {
			dst, wgt := mg.Out(v)
			for i := range dst {
				sink += wgt[i]
			}
			rdst, rwgt := mg.In(v)
			for i := range rdst {
				sink += rwgt[i]
			}
			sink += mg.Node(v).X
		}
	}); n != 0 {
		t.Errorf("mapped read path allocates %v per run, want 0", n)
	}
	_ = sink
}
