package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// The binary codec is used by cmd/netgen and tests to persist networks.
// Layout (little endian):
//
//	magic   "AIRG" (4 bytes)
//	version u32 (=1)
//	nNodes  u32
//	nArcs   u32
//	nodes   nNodes × (x f64, y f64)
//	arcs    nArcs  × (tail u32, head u32, w f64)
const (
	binaryMagic   = "AIRG"
	binaryVersion = 1
)

// Encode writes g in the binary network format.
func Encode(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var scratch [24]byte
	binary.LittleEndian.PutUint32(scratch[0:], binaryVersion)
	binary.LittleEndian.PutUint32(scratch[4:], uint32(g.NumNodes()))
	binary.LittleEndian.PutUint32(scratch[8:], uint32(g.NumArcs()))
	if _, err := bw.Write(scratch[:12]); err != nil {
		return err
	}
	for _, nd := range g.nodes {
		binary.LittleEndian.PutUint64(scratch[0:], math.Float64bits(nd.X))
		binary.LittleEndian.PutUint64(scratch[8:], math.Float64bits(nd.Y))
		if _, err := bw.Write(scratch[:16]); err != nil {
			return err
		}
	}
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		dst, wgt := g.Out(v)
		for i, d := range dst {
			binary.LittleEndian.PutUint32(scratch[0:], uint32(v))
			binary.LittleEndian.PutUint32(scratch[4:], uint32(d))
			binary.LittleEndian.PutUint64(scratch[8:], math.Float64bits(wgt[i]))
			if _, err := bw.Write(scratch[:16]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Decode reads a graph in the binary network format.
func Decode(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var head [16]byte
	if _, err := io.ReadFull(br, head[:16]); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if string(head[:4]) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", head[:4])
	}
	if v := binary.LittleEndian.Uint32(head[4:]); v != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", v)
	}
	nNodes := int(binary.LittleEndian.Uint32(head[8:]))
	nArcs := int(binary.LittleEndian.Uint32(head[12:]))
	b := NewBuilder(nNodes, nArcs)
	var buf [16]byte
	for i := 0; i < nNodes; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("graph: reading node %d: %w", i, err)
		}
		x := math.Float64frombits(binary.LittleEndian.Uint64(buf[0:]))
		y := math.Float64frombits(binary.LittleEndian.Uint64(buf[8:]))
		b.AddNode(x, y)
	}
	for i := 0; i < nArcs; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("graph: reading arc %d: %w", i, err)
		}
		u := NodeID(binary.LittleEndian.Uint32(buf[0:]))
		v := NodeID(binary.LittleEndian.Uint32(buf[4:]))
		w := math.Float64frombits(binary.LittleEndian.Uint64(buf[8:]))
		b.AddArc(u, v, w)
	}
	return b.Build()
}

// EncodeText writes g in a line-oriented text format:
//
//	n <nodes> <arcs>
//	v <id> <x> <y>
//	a <tail> <head> <weight>
//
// Lines beginning with '#' are comments.
func EncodeText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d %d\n", g.NumNodes(), g.NumArcs()); err != nil {
		return err
	}
	for _, nd := range g.nodes {
		if _, err := fmt.Fprintf(bw, "v %d %g %g\n", nd.ID, nd.X, nd.Y); err != nil {
			return err
		}
	}
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		dst, wgt := g.Out(v)
		for i, d := range dst {
			if _, err := fmt.Fprintf(bw, "a %d %d %g\n", v, d, wgt[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// DecodeText reads the line-oriented text format produced by EncodeText.
// Node lines must appear in dense-ID order.
func DecodeText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	b := NewBuilder(0, 0)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "n":
			// Size hint only; nothing to do.
		case "v":
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: want 'v id x y', got %q", lineNo, line)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad node id: %w", lineNo, err)
			}
			if id != b.NumNodes() {
				return nil, fmt.Errorf("graph: line %d: node id %d out of order (want %d)", lineNo, id, b.NumNodes())
			}
			x, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad x: %w", lineNo, err)
			}
			y, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad y: %w", lineNo, err)
			}
			b.AddNode(x, y)
		case "a":
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: want 'a tail head w', got %q", lineNo, line)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad tail: %w", lineNo, err)
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad head: %w", lineNo, err)
			}
			w, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %w", lineNo, err)
			}
			b.AddArc(NodeID(u), NodeID(v), w)
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record type %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build()
}
