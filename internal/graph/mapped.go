package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"unsafe"

	"repro/internal/mmap"
)

// The mapped codec serializes a built CSR so it can be served straight out
// of a read-only memory mapping: no Builder, no re-sort, no heap copies of
// the big arrays. Where the "AIRG" codec (codec.go) stores the edge list
// and rebuilds the CSR on load — O(m log m) time and 3x transient memory —
// the mapped form stores the CSR sections themselves, 8-byte aligned, so
// OpenMapped is a validation pass plus slice aliasing. This is what makes
// a continent graph restart-cheap: the file sits in the page cache and the
// Graph costs O(1) heap.
//
// Layout (little endian, every section 8-byte aligned):
//
//	off  0  magic "AIRM" (4 bytes)
//	off  4  u32 format version (=1)
//	off  8  u64 nNodes
//	off 16  u64 nArcs
//	off 24  u64 layout probe (probeWord, written natively by WriteMapped)
//	off 32  f64 minX, minY, maxX, maxY
//	off 64  nodes  nNodes × Node records (id i32, pad u32, x f64, y f64)
//	        off    (nNodes+1) × i32, zero-padded to 8
//	        dst    nArcs × i32, zero-padded to 8
//	        wgt    nArcs × f64
//	        roff   (nNodes+1) × i32, zero-padded to 8
//	        rdst   nArcs × i32, zero-padded to 8
//	        rwgt   nArcs × f64
//
// The node records mirror Go's in-memory Node layout on little-endian
// machines, checked at runtime (canAlias): when the check passes, every
// section aliases the mapping; when it fails (big-endian host, misaligned
// buffer, layout drift), OpenMapped decodes into fresh heap slices instead
// — same Graph, no unsafe aliasing, bit-identical behavior.
const (
	mappedMagic   = "AIRM"
	mappedVersion = 1
	mappedHeader  = 64
	// probeWord round-trips through the file to verify the writer and the
	// reader agree on byte order before any zero-copy aliasing.
	probeWord = 0x0102030405060708
)

// nodeRecBytes is the on-disk (and in-memory) size of one Node record.
const nodeRecBytes = 24

// pad8 rounds n up to a multiple of 8.
func pad8(n int64) int64 { return (n + 7) &^ 7 }

// MappedBytes returns the exact size WriteMapped produces for g: callers
// sizing a cache budget or preallocating a buffer.
func MappedBytes(g *Graph) int64 {
	n, m := int64(g.NumNodes()), int64(g.NumArcs())
	return mappedHeader +
		n*nodeRecBytes +
		2*pad8((n+1)*4) + // off, roff
		2*pad8(m*4) + // dst, rdst
		2*m*8 // wgt, rwgt
}

// WriteMapped writes g in the mapped CSR format. The output streams — peak
// extra memory is one bufio buffer regardless of graph size.
func WriteMapped(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [mappedHeader]byte
	copy(hdr[0:4], mappedMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], mappedVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(g.NumNodes()))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(g.NumArcs()))
	binary.LittleEndian.PutUint64(hdr[24:32], probeWord)
	binary.LittleEndian.PutUint64(hdr[32:40], math.Float64bits(g.minX))
	binary.LittleEndian.PutUint64(hdr[40:48], math.Float64bits(g.minY))
	binary.LittleEndian.PutUint64(hdr[48:56], math.Float64bits(g.maxX))
	binary.LittleEndian.PutUint64(hdr[56:64], math.Float64bits(g.maxY))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [nodeRecBytes]byte
	for _, nd := range g.nodes {
		binary.LittleEndian.PutUint32(rec[0:4], uint32(nd.ID))
		binary.LittleEndian.PutUint32(rec[4:8], 0)
		binary.LittleEndian.PutUint64(rec[8:16], math.Float64bits(nd.X))
		binary.LittleEndian.PutUint64(rec[16:24], math.Float64bits(nd.Y))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	if err := writeI32s(bw, g.off); err != nil {
		return err
	}
	if err := writeIDs(bw, g.dst); err != nil {
		return err
	}
	if err := writeF64s(bw, g.wgt); err != nil {
		return err
	}
	if err := writeI32s(bw, g.roff); err != nil {
		return err
	}
	if err := writeIDs(bw, g.rdst); err != nil {
		return err
	}
	if err := writeF64s(bw, g.rwgt); err != nil {
		return err
	}
	return bw.Flush()
}

func writeI32s(bw *bufio.Writer, vs []int32) error {
	var b [4]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		if _, err := bw.Write(b[:]); err != nil {
			return err
		}
	}
	return writePad(bw, int64(len(vs))*4)
}

func writeIDs(bw *bufio.Writer, vs []NodeID) error {
	var b [4]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		if _, err := bw.Write(b[:]); err != nil {
			return err
		}
	}
	return writePad(bw, int64(len(vs))*4)
}

func writeF64s(bw *bufio.Writer, vs []float64) error {
	var b [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		if _, err := bw.Write(b[:]); err != nil {
			return err
		}
	}
	return nil
}

func writePad(bw *bufio.Writer, written int64) error {
	for pad := pad8(written) - written; pad > 0; pad-- {
		if err := bw.WriteByte(0); err != nil {
			return err
		}
	}
	return nil
}

// canAlias reports whether data's numeric sections can be viewed in place:
// little-endian host, 8-aligned base address, and a Node memory layout
// matching the record format. Compile-time constants on any given build,
// except the buffer alignment.
func canAlias(data []byte) bool {
	if len(data) == 0 || uintptr(unsafe.Pointer(&data[0]))%8 != 0 {
		return false
	}
	if unsafe.Sizeof(Node{}) != nodeRecBytes ||
		unsafe.Offsetof(Node{}.ID) != 0 ||
		unsafe.Offsetof(Node{}.X) != 8 ||
		unsafe.Offsetof(Node{}.Y) != 16 {
		return false
	}
	probe := uint64(probeWord)
	first := *(*byte)(unsafe.Pointer(&probe))
	return first == 0x08 // little endian
}

// aliasSlice views n elements of T at data[off:]. The caller has verified
// alignment and bounds.
func aliasSlice[T any](data []byte, off int64, n int64) []T {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&data[off])), n)
}

// OpenMapped builds a Graph from a buffer in the mapped CSR format —
// typically an mmap'd file (MapFile) or a diskcache payload. When the host
// allows (see canAlias) the Graph's arrays alias data: the caller must keep
// data valid and unmodified for the Graph's lifetime (a page-cache mapping
// does this for free). Otherwise the sections are decoded into heap slices
// and data may be discarded. Either way the resulting Graph is
// bit-identical to the one WriteMapped serialized.
func OpenMapped(data []byte) (*Graph, error) {
	if int64(len(data)) < mappedHeader {
		return nil, fmt.Errorf("graph: mapped buffer shorter than header")
	}
	if string(data[0:4]) != mappedMagic {
		return nil, fmt.Errorf("graph: bad mapped magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != mappedVersion {
		return nil, fmt.Errorf("graph: unsupported mapped version %d", v)
	}
	if p := binary.LittleEndian.Uint64(data[24:32]); p != probeWord {
		return nil, fmt.Errorf("graph: mapped layout probe %#x, want %#x", p, uint64(probeWord))
	}
	n := int64(binary.LittleEndian.Uint64(data[8:16]))
	m := int64(binary.LittleEndian.Uint64(data[16:24]))
	if n < 0 || m < 0 || n > math.MaxInt32 || m > math.MaxInt32 {
		return nil, fmt.Errorf("graph: mapped sizes out of range: %d nodes, %d arcs", n, m)
	}
	g := &Graph{
		minX: math.Float64frombits(binary.LittleEndian.Uint64(data[32:40])),
		minY: math.Float64frombits(binary.LittleEndian.Uint64(data[40:48])),
		maxX: math.Float64frombits(binary.LittleEndian.Uint64(data[48:56])),
		maxY: math.Float64frombits(binary.LittleEndian.Uint64(data[56:64])),
	}
	// Walk the section table once, checking bounds as we go.
	off := int64(mappedHeader)
	section := func(size int64) (int64, error) {
		at := off
		off += size
		if off > int64(len(data)) {
			return 0, fmt.Errorf("graph: mapped buffer truncated (need %d bytes, have %d)", off, len(data))
		}
		return at, nil
	}
	nodesAt, err := section(n * nodeRecBytes)
	if err != nil {
		return nil, err
	}
	offAt, err := section(pad8((n + 1) * 4))
	if err != nil {
		return nil, err
	}
	dstAt, err := section(pad8(m * 4))
	if err != nil {
		return nil, err
	}
	wgtAt, err := section(m * 8)
	if err != nil {
		return nil, err
	}
	roffAt, err := section(pad8((n + 1) * 4))
	if err != nil {
		return nil, err
	}
	rdstAt, err := section(pad8(m * 4))
	if err != nil {
		return nil, err
	}
	rwgtAt, err := section(m * 8)
	if err != nil {
		return nil, err
	}

	if canAlias(data) {
		g.nodes = aliasSlice[Node](data, nodesAt, n)
		g.off = aliasSlice[int32](data, offAt, n+1)
		g.dst = aliasSlice[NodeID](data, dstAt, m)
		g.wgt = aliasSlice[float64](data, wgtAt, m)
		g.roff = aliasSlice[int32](data, roffAt, n+1)
		g.rdst = aliasSlice[NodeID](data, rdstAt, m)
		g.rwgt = aliasSlice[float64](data, rwgtAt, m)
	} else {
		g.nodes = make([]Node, n)
		for i := int64(0); i < n; i++ {
			rec := data[nodesAt+i*nodeRecBytes:]
			g.nodes[i] = Node{
				ID: NodeID(binary.LittleEndian.Uint32(rec[0:4])),
				X:  math.Float64frombits(binary.LittleEndian.Uint64(rec[8:16])),
				Y:  math.Float64frombits(binary.LittleEndian.Uint64(rec[16:24])),
			}
		}
		g.off = decodeI32s(data[offAt:], n+1)
		g.dst = decodeIDs(data[dstAt:], m)
		g.wgt = decodeF64s(data[wgtAt:], m)
		g.roff = decodeI32s(data[roffAt:], n+1)
		g.rdst = decodeIDs(data[rdstAt:], m)
		g.rwgt = decodeF64s(data[rwgtAt:], m)
	}

	// Structural validation: monotone offsets ending at m, targets in
	// range. O(n+m) sequential reads — the price of trusting the arrays
	// for every later unchecked index.
	if err := checkCSR(g.off, g.dst, n, m); err != nil {
		return nil, fmt.Errorf("graph: mapped forward CSR: %w", err)
	}
	if err := checkCSR(g.roff, g.rdst, n, m); err != nil {
		return nil, fmt.Errorf("graph: mapped reverse CSR: %w", err)
	}
	for i := range g.nodes {
		if g.nodes[i].ID != NodeID(i) {
			return nil, fmt.Errorf("graph: mapped node %d has ID %d", i, g.nodes[i].ID)
		}
	}
	return g, nil
}

func decodeI32s(data []byte, n int64) []int32 {
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = int32(binary.LittleEndian.Uint32(data[i*4:]))
	}
	return vs
}

func decodeIDs(data []byte, n int64) []NodeID {
	vs := make([]NodeID, n)
	for i := range vs {
		vs[i] = NodeID(binary.LittleEndian.Uint32(data[i*4:]))
	}
	return vs
}

func decodeF64s(data []byte, n int64) []float64 {
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return vs
}

func checkCSR(off []int32, dst []NodeID, n, m int64) error {
	if int64(len(off)) != n+1 || int64(len(dst)) != m {
		return fmt.Errorf("section sizes %d/%d, want %d/%d", len(off), len(dst), n+1, m)
	}
	if n >= 0 && len(off) > 0 {
		if off[0] != 0 || int64(off[n]) != m {
			return fmt.Errorf("offsets span [%d,%d], want [0,%d]", off[0], off[n], m)
		}
	}
	for i := int64(0); i < n; i++ {
		if off[i] > off[i+1] {
			return fmt.Errorf("offsets not monotone at node %d", i)
		}
	}
	for i, d := range dst {
		if d < 0 || int64(d) >= n {
			return fmt.Errorf("arc %d targets node %d of %d", i, d, n)
		}
	}
	return nil
}

// MappedGraph is a Graph backed by a file mapping; Close releases the
// mapping (after which the Graph must not be used).
type MappedGraph struct {
	*Graph
	data *mmap.Data
}

// Close unmaps the backing file.
func (mg *MappedGraph) Close() error {
	if mg.data == nil {
		return nil
	}
	d := mg.data
	mg.data = nil
	return d.Close()
}

// MapFile memory-maps the named mapped-CSR file (WriteMapped's output) and
// opens it in place: the graph's arrays live in the page cache, not the
// heap. The caller must Close the result when done with the graph.
func MapFile(path string) (*MappedGraph, error) {
	d, err := mmap.Open(path)
	if err != nil {
		return nil, err
	}
	g, err := OpenMapped(d.Bytes())
	if err != nil {
		d.Close()
		return nil, err
	}
	return &MappedGraph{Graph: g, data: d}, nil
}
