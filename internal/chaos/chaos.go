// Package chaos is the repo's fault-injection subsystem: a netem-style UDP
// fault proxy (proxy.go) and an in-process hook for the wire transport,
// both driven by one deterministic seeded fault plan. Where the broadcast
// simulator draws i.i.d. Bernoulli loss per position (broadcast.Lost), a
// real wire fails in correlated ways: loss arrives in bursts (a fading
// radio channel, a congested queue), datagrams are reordered and
// duplicated by multipath routing, bits flip, and whole windows black out
// when a broadcaster dies or a route flaps. This package injects exactly
// those shapes — Gilbert-Elliott two-state bursty loss, reordering,
// duplication, corruption, blackhole windows — with the same splitmix64
// draw discipline as the simulator, so every chaos run is replayable: the
// fault verdict for the n-th datagram of a stream is a pure function of
// (seed, n), never of wall-clock timing.
//
// The resilience machinery this exercises lives elsewhere: wire.Receiver
// re-dials a dead broadcaster with capped jittered backoff, deploy.Session
// enforces per-query tuning/deadline budgets with explicit degraded-answer
// reporting, and wire.Broadcaster sheds load with typed refusals. The
// chaos soak (soak_test.go) drives all of it at once: a fleet rides
// through bursty loss and a broadcaster kill+restart with zero hung
// sessions and every completed answer still Dijkstra-verified.
package chaos

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Package-level instruments (DESIGN.md §12). One set per process: chaos
// runs want "how much damage did the run inject" totals, not per-flow
// cardinality.
var (
	obsDropped = obs.GetCounter("air_chaos_dropped_total",
		"datagrams dropped by chaos injection (Gilbert-Elliott loss)")
	obsBlackholed = obs.GetCounter("air_chaos_blackholed_total",
		"datagrams swallowed by a chaos blackhole window")
	obsCorrupted = obs.GetCounter("air_chaos_corrupted_total",
		"datagrams bit-flipped by chaos injection")
	obsDuplicated = obs.GetCounter("air_chaos_duplicated_total",
		"datagrams duplicated by chaos injection")
	obsReordered = obs.GetCounter("air_chaos_reordered_total",
		"datagrams held back one slot by chaos injection (reordering)")
)

// splitmix64 is the finalizer the whole repo draws determinism from
// (broadcast.Lost, fleet client seeds, wire dial jitter).
func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Draw-stream constants: each fault family reads its own uncorrelated
// [0,1) sequence over the shared (seed, n) space.
const (
	streamTransition uint64 = 1 + iota
	streamLoss
	streamCorrupt
	streamCorruptBit
	streamDuplicate
	streamReorder
)

// draw returns the deterministic uniform [0,1) draw for datagram n of the
// given fault stream.
func draw(seed uint64, n uint64, stream uint64) float64 {
	z := splitmix64(seed + n*0x9E3779B97F4A7C15 + stream*0xD1B54A32D192ED03)
	return float64(z>>11) / float64(1<<53)
}

// DeriveSeed folds an index into a seed with the splitmix64 finalizer, the
// same discipline fleet.clientSeed uses: nearby indexes land in unrelated
// parts of the draw space, so per-flow fault patterns never alias.
func DeriveSeed(seed int64, index int) int64 {
	return int64(splitmix64(uint64(seed) + uint64(index)*0x9E3779B97F4A7C15))
}

// Plan is one direction's deterministic fault schedule. The zero value
// injects nothing (a transparent wire). All probabilities are per datagram
// in [0,1).
type Plan struct {
	// Seed anchors every draw; the same plan replays the same fault
	// sequence for the same datagram stream.
	Seed int64

	// Gilbert-Elliott two-state bursty loss: the channel wanders between a
	// good and a bad state with per-datagram transition probabilities
	// PGoodBad and PBadGood, dropping each datagram with LossGood or
	// LossBad. Mean burst length is 1/PBadGood datagrams; PBadGood == 0
	// with PGoodBad > 0 degenerates to a one-way trap (the channel never
	// recovers), which is allowed but rarely what a test wants.
	PGoodBad, PBadGood float64
	LossGood, LossBad  float64

	// Corrupt flips one deterministic bit of the datagram (which the frame
	// CRC must catch downstream).
	Corrupt float64

	// Duplicate delivers the datagram twice back to back.
	Duplicate float64

	// Reorder holds the datagram back one slot: it is delivered after the
	// next datagram instead of before it (a two-element swap, the common
	// mild reordering of multipath routes).
	Reorder float64

	// BlackholeEvery/BlackholeLen cut periodic total outages into the
	// stream: of every BlackholeEvery datagrams, the first BlackholeLen
	// are swallowed whole. 0 disables. This is the schedulable stand-in
	// for a route flap or a mid-run broadcaster freeze.
	BlackholeEvery, BlackholeLen int
}

// Enabled reports whether the plan injects any fault at all.
func (p Plan) Enabled() bool {
	return p.PGoodBad > 0 || p.LossGood > 0 || p.LossBad > 0 ||
		p.Corrupt > 0 || p.Duplicate > 0 || p.Reorder > 0 ||
		(p.BlackholeEvery > 0 && p.BlackholeLen > 0)
}

// Validate rejects out-of-range probabilities and a blackhole window that
// swallows the whole period (a misconfigured plan should fail loudly, not
// silence a stream forever).
func (p Plan) Validate() error {
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"PGoodBad", p.PGoodBad}, {"PBadGood", p.PBadGood},
		{"LossGood", p.LossGood}, {"LossBad", p.LossBad},
		{"Corrupt", p.Corrupt}, {"Duplicate", p.Duplicate}, {"Reorder", p.Reorder},
	} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("chaos: %s %v outside [0,1]", pr.name, pr.v)
		}
	}
	if p.BlackholeEvery < 0 || p.BlackholeLen < 0 {
		return fmt.Errorf("chaos: negative blackhole window")
	}
	if p.BlackholeEvery > 0 && p.BlackholeLen >= p.BlackholeEvery {
		return fmt.Errorf("chaos: blackhole of %d datagrams covers the whole %d-datagram period",
			p.BlackholeLen, p.BlackholeEvery)
	}
	return nil
}

// Stats counts the faults an injector (or proxy direction) actually
// applied.
type Stats struct {
	Datagrams  uint64 // datagrams offered to the injector
	Dropped    uint64 // Gilbert-Elliott losses
	Blackholed uint64 // swallowed by a blackhole window
	Corrupted  uint64
	Duplicated uint64
	Reordered  uint64
}

// Add folds another stats snapshot in.
func (s *Stats) Add(o Stats) {
	s.Datagrams += o.Datagrams
	s.Dropped += o.Dropped
	s.Blackholed += o.Blackholed
	s.Corrupted += o.Corrupted
	s.Duplicated += o.Duplicated
	s.Reordered += o.Reordered
}

// String renders the damage summary one line at a time-honored density.
func (s Stats) String() string {
	return fmt.Sprintf("%d datagrams: %d dropped, %d blackholed, %d corrupted, %d duplicated, %d reordered",
		s.Datagrams, s.Dropped, s.Blackholed, s.Corrupted, s.Duplicated, s.Reordered)
}

// Injector applies one Plan to one datagram stream. It is single-goroutine
// (like the receiver side of the wire); wrap it in a lock to share, as
// WireHook does. Fault verdicts depend only on (plan, datagram index) —
// the Gilbert-Elliott state itself evolves from deterministic draws — so
// two injectors with equal plans fed equal-length streams emit identical
// fault sequences.
type Injector struct {
	plan Plan
	seed uint64
	n    uint64 // next datagram index
	bad  bool   // Gilbert-Elliott state
	held []byte // datagram held back by a reorder
	st   Stats
}

// NewInjector returns an injector for the plan. The plan must Validate.
func NewInjector(p Plan) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Injector{plan: p, seed: uint64(p.Seed)}, nil
}

// Stats returns the damage applied so far.
func (in *Injector) Stats() Stats { return in.st }

// verdict is one datagram's fault decision.
type verdict struct {
	drop      bool // Gilbert-Elliott loss
	blackhole bool
	corrupt   bool
	bit       uint64 // which bit to flip when corrupting
	duplicate bool
	reorder   bool
}

// step advances the deterministic fault machine one datagram and returns
// the verdict for datagram n.
func (in *Injector) step() verdict {
	p, n := in.plan, in.n
	in.n++
	var v verdict
	// The Gilbert-Elliott state evolves on every datagram, including ones a
	// blackhole swallows: the channel's weather does not pause for an
	// outage, and keeping the transition draws position-indexed is what
	// makes the sequence replayable.
	if in.bad {
		if p.PBadGood > 0 && draw(in.seed, n, streamTransition) < p.PBadGood {
			in.bad = false
		}
	} else {
		if p.PGoodBad > 0 && draw(in.seed, n, streamTransition) < p.PGoodBad {
			in.bad = true
		}
	}
	if p.BlackholeEvery > 0 && int(n%uint64(p.BlackholeEvery)) < p.BlackholeLen {
		v.blackhole = true
		return v
	}
	loss := p.LossGood
	if in.bad {
		loss = p.LossBad
	}
	if loss > 0 && draw(in.seed, n, streamLoss) < loss {
		v.drop = true
		return v
	}
	if p.Corrupt > 0 && draw(in.seed, n, streamCorrupt) < p.Corrupt {
		v.corrupt = true
		v.bit = uint64(draw(in.seed, n, streamCorruptBit) * float64(1<<30))
	}
	if p.Duplicate > 0 && draw(in.seed, n, streamDuplicate) < p.Duplicate {
		v.duplicate = true
	}
	if p.Reorder > 0 && draw(in.seed, n, streamReorder) < p.Reorder {
		v.reorder = true
	}
	return v
}

// Apply consumes one datagram and returns the datagrams to deliver now, in
// order: zero (dropped, blackholed, or held back for reordering), one, or
// more (a duplicate, or a previously held datagram riding behind this
// one). The returned slices are copies; the caller may reuse b.
func (in *Injector) Apply(b []byte) [][]byte {
	v := in.step()
	in.st.Datagrams++
	switch {
	case v.blackhole:
		in.st.Blackholed++
		obsBlackholed.Inc()
		return nil
	case v.drop:
		in.st.Dropped++
		obsDropped.Inc()
		return nil
	}
	out := append([]byte(nil), b...)
	if v.corrupt && len(out) > 0 {
		bit := v.bit % uint64(len(out)*8)
		out[bit/8] ^= 1 << (bit % 8)
		in.st.Corrupted++
		obsCorrupted.Inc()
	}
	var deliver [][]byte
	if v.reorder && in.held == nil {
		// Hold this datagram back; it rides behind the next one.
		in.held = out
		in.st.Reordered++
		obsReordered.Inc()
		return nil
	}
	deliver = append(deliver, out)
	if v.duplicate {
		deliver = append(deliver, append([]byte(nil), out...))
		in.st.Duplicated++
		obsDuplicated.Inc()
	}
	if in.held != nil {
		deliver = append(deliver, in.held)
		in.held = nil
	}
	return deliver
}

// Flush drains a datagram still held back by a reorder at stream end.
func (in *Injector) Flush() [][]byte {
	if in.held == nil {
		return nil
	}
	h := in.held
	in.held = nil
	return [][]byte{h}
}

// WireHook adapts the injector to wire.BroadcasterOptions.Corrupt — the
// in-process fault hook, for chaos tests that want bursty loss and
// corruption without a UDP proxy in the path. The hook's signature can
// drop (return nil) or mutate a frame but not duplicate or reorder, so
// those plan fields are ignored here; use a Proxy for the full set. The
// returned func is safe for concurrent use (broadcaster pumps are one
// goroutine per remote); the lock serializes the deterministic state.
func (in *Injector) WireHook() func(pos uint64, frame []byte) []byte {
	var mu sync.Mutex
	return func(pos uint64, frame []byte) []byte {
		mu.Lock()
		defer mu.Unlock()
		v := in.step()
		in.st.Datagrams++
		switch {
		case v.blackhole:
			in.st.Blackholed++
			obsBlackholed.Inc()
			return nil
		case v.drop:
			in.st.Dropped++
			obsDropped.Inc()
			return nil
		}
		if v.corrupt && len(frame) > 0 {
			bit := v.bit % uint64(len(frame)*8)
			frame[bit/8] ^= 1 << (bit % 8)
			in.st.Corrupted++
			obsCorrupted.Inc()
		}
		return frame
	}
}

// Schedule yields deterministic event times for process-level faults — the
// broadcaster kill/restart drill of the chaos soak. Event i fires at the
// sum of i+1 jittered intervals drawn uniformly from [Min, Max] with the
// same splitmix64 discipline as everything else, so a kill schedule
// replays exactly for a given seed.
type Schedule struct {
	Seed     int64
	Min, Max time.Duration
}

// At returns the offset of the i-th event (0-based) from the schedule
// start.
func (s Schedule) At(i int) time.Duration {
	if s.Max < s.Min {
		s.Max = s.Min
	}
	var total time.Duration
	for k := 0; k <= i; k++ {
		u := draw(uint64(s.Seed), uint64(k), streamTransition)
		total += s.Min + time.Duration(u*float64(s.Max-s.Min))
	}
	return total
}
