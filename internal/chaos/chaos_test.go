package chaos

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// frames builds a deterministic stream of n distinct datagrams.
func frames(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("datagram-%04d-padding-padding", i))
	}
	return out
}

// replay runs a plan over a frame stream and flattens the delivered
// datagrams.
func replay(t *testing.T, p Plan, in [][]byte) ([][]byte, Stats) {
	t.Helper()
	inj, err := NewInjector(p)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	var out [][]byte
	for _, f := range in {
		out = append(out, inj.Apply(f)...)
	}
	out = append(out, inj.Flush()...)
	return out, inj.Stats()
}

// TestInjectorDeterministicReplay is the load-bearing property of the whole
// package: two injectors with the same plan fed the same stream emit
// identical datagram sequences and identical damage counts. Every chaos run
// is replayable from its seed.
func TestInjectorDeterministicReplay(t *testing.T) {
	plan := Plan{
		Seed:     42,
		PGoodBad: 0.1, PBadGood: 0.3,
		LossGood: 0.02, LossBad: 0.6,
		Corrupt: 0.05, Duplicate: 0.05, Reorder: 0.1,
		BlackholeEvery: 200, BlackholeLen: 15,
	}
	in := frames(2000)
	a, sa := replay(t, plan, in)
	b, sb := replay(t, plan, in)
	if sa != sb {
		t.Fatalf("stats diverge between identical runs:\n  %v\n  %v", sa, sb)
	}
	if len(a) != len(b) {
		t.Fatalf("delivered %d vs %d datagrams between identical runs", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("datagram %d differs between identical runs", i)
		}
	}
	// The plan above must actually have exercised every fault family,
	// otherwise the replay assertion is vacuous.
	if sa.Dropped == 0 || sa.Blackholed == 0 || sa.Corrupted == 0 || sa.Duplicated == 0 || sa.Reordered == 0 {
		t.Fatalf("plan did not exercise every fault family: %v", sa)
	}
	if sa.Datagrams != uint64(len(in)) {
		t.Fatalf("counted %d datagrams, offered %d", sa.Datagrams, len(in))
	}
}

// TestInjectorSeedChangesSequence guards against a seed that silently does
// nothing: different seeds must produce different fault patterns.
func TestInjectorSeedChangesSequence(t *testing.T) {
	in := frames(500)
	p := Plan{Seed: 1, LossGood: 0.3}
	q := p
	q.Seed = 2
	a, _ := replay(t, p, in)
	b, _ := replay(t, q, in)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if !bytes.Equal(a[i], b[i]) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("seeds 1 and 2 produced identical fault sequences")
		}
	}
}

// TestInjectorTransparent: the zero plan is a wire, not a filter.
func TestInjectorTransparent(t *testing.T) {
	in := frames(100)
	out, st := replay(t, Plan{}, in)
	if len(out) != len(in) {
		t.Fatalf("transparent plan delivered %d of %d datagrams", len(out), len(in))
	}
	for i := range in {
		if !bytes.Equal(out[i], in[i]) {
			t.Fatalf("transparent plan mutated datagram %d", i)
		}
	}
	if st.Dropped+st.Blackholed+st.Corrupted+st.Duplicated+st.Reordered != 0 {
		t.Fatalf("transparent plan reported damage: %v", st)
	}
	if (Plan{}).Enabled() {
		t.Fatal("zero plan reports Enabled")
	}
}

// TestInjectorDuplicate: a pure-duplication plan delivers every original in
// order plus the duplicates, and never loses a byte.
func TestInjectorDuplicate(t *testing.T) {
	in := frames(1000)
	out, st := replay(t, Plan{Seed: 7, Duplicate: 0.2}, in)
	if st.Duplicated == 0 {
		t.Fatal("20% duplication over 1000 datagrams duplicated nothing")
	}
	if got, want := len(out), len(in)+int(st.Duplicated); got != want {
		t.Fatalf("delivered %d datagrams, want %d (%d in + %d dup)", got, want, len(in), st.Duplicated)
	}
	// Every delivered datagram is one of the originals, and originals stay
	// in order (duplicates ride directly behind their original).
	next := 0
	for _, d := range out {
		if next < len(in) && bytes.Equal(d, in[next]) {
			next++
		}
	}
	if next != len(in) {
		t.Fatalf("originals out of order: matched %d of %d in sequence", next, len(in))
	}
}

// TestInjectorReorder: reordering holds a datagram back exactly one slot
// and never loses it — the delivered stream is a permutation of the input.
func TestInjectorReorder(t *testing.T) {
	in := frames(1000)
	out, st := replay(t, Plan{Seed: 9, Reorder: 0.3}, in)
	if st.Reordered == 0 {
		t.Fatal("30% reorder over 1000 datagrams reordered nothing")
	}
	if len(out) != len(in) {
		t.Fatalf("reorder lost datagrams: %d in, %d out", len(in), len(out))
	}
	seen := make(map[string]int)
	for _, d := range in {
		seen[string(d)]++
	}
	for _, d := range out {
		seen[string(d)]--
	}
	for k, v := range seen {
		if v != 0 {
			t.Fatalf("reorder is not a permutation: %q off by %d", k, v)
		}
	}
}

// TestInjectorCorrupt: corruption flips exactly one bit — the damaged
// datagram differs from the original in exactly one position by a power of
// two.
func TestInjectorCorrupt(t *testing.T) {
	in := frames(1000)
	out, st := replay(t, Plan{Seed: 3, Corrupt: 0.2}, in)
	if st.Corrupted == 0 {
		t.Fatal("20% corruption over 1000 datagrams corrupted nothing")
	}
	if len(out) != len(in) {
		t.Fatalf("corruption changed delivery count: %d in, %d out", len(in), len(out))
	}
	var flipped uint64
	for i := range out {
		diff := 0
		for j := range out[i] {
			if x := out[i][j] ^ in[i][j]; x != 0 {
				diff++
				if x&(x-1) != 0 {
					t.Fatalf("datagram %d byte %d differs by %#x — more than one bit", i, j, x)
				}
			}
		}
		if diff > 1 {
			t.Fatalf("datagram %d differs in %d bytes, want at most 1", i, diff)
		}
		if diff == 1 {
			flipped++
		}
	}
	if flipped != st.Corrupted {
		t.Fatalf("found %d corrupted datagrams, stats say %d", flipped, st.Corrupted)
	}
}

// TestInjectorBlackhole: the periodic window swallows exactly BlackholeLen
// of every BlackholeEvery datagrams, at the start of each period.
func TestInjectorBlackhole(t *testing.T) {
	const every, length, periods = 50, 10, 8
	in := frames(every * periods)
	out, st := replay(t, Plan{Seed: 5, BlackholeEvery: every, BlackholeLen: length}, in)
	if want := uint64(length * periods); st.Blackholed != want {
		t.Fatalf("blackholed %d datagrams, want %d", st.Blackholed, want)
	}
	if want := (every - length) * periods; len(out) != want {
		t.Fatalf("delivered %d datagrams, want %d", len(out), want)
	}
	// First survivor of each period is the one right after the window.
	if !bytes.Equal(out[0], in[length]) {
		t.Fatalf("first survivor is %q, want %q", out[0], in[length])
	}
}

// TestInjectorBurstyLoss: in a plan where only the bad state drops, losses
// must arrive in runs (that is the point of Gilbert-Elliott) and the loss
// rate must sit between the two per-state rates.
func TestInjectorBurstyLoss(t *testing.T) {
	plan := Plan{Seed: 11, PGoodBad: 0.02, PBadGood: 0.2, LossGood: 0, LossBad: 1}
	inj, err := NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	var dropped, bursts int
	prevDropped := false
	for i := 0; i < n; i++ {
		delivered := inj.Apply([]byte{byte(i)})
		if len(delivered) == 0 {
			dropped++
			if !prevDropped {
				bursts++
			}
			prevDropped = true
		} else {
			prevDropped = false
		}
	}
	if dropped == 0 {
		t.Fatal("bursty plan dropped nothing over 20000 datagrams")
	}
	// Stationary bad-state probability is PGoodBad/(PGoodBad+PBadGood) ≈ 9%;
	// with LossBad = 1 the drop rate tracks it. Accept a wide band.
	rate := float64(dropped) / n
	if rate < 0.02 || rate > 0.25 {
		t.Fatalf("drop rate %.3f outside the plausible band for the plan", rate)
	}
	// Bursts: mean run length is 1/PBadGood = 5, so runs ≈ dropped/5, far
	// fewer than dropped. i.i.d. loss at the same rate would give runs ≈
	// dropped·(1-rate) — nearly every loss isolated.
	if meanRun := float64(dropped) / float64(bursts); meanRun < 2 {
		t.Fatalf("mean loss-burst length %.2f — losses are not bursty", meanRun)
	}
}

// TestPlanValidate: out-of-range knobs fail loudly.
func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{PGoodBad: -0.1},
		{LossBad: 1.5},
		{Corrupt: 2},
		{BlackholeEvery: -1},
		{BlackholeEvery: 10, BlackholeLen: 10}, // swallows the whole period
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d (%+v) validated, want error", i, p)
		}
		if _, err := NewInjector(p); err == nil {
			t.Errorf("NewInjector accepted invalid plan %d", i)
		}
	}
	good := Plan{Seed: 1, PGoodBad: 1, PBadGood: 1, LossGood: 1, LossBad: 1,
		Corrupt: 1, Duplicate: 1, Reorder: 1, BlackholeEvery: 10, BlackholeLen: 9}
	if err := good.Validate(); err != nil {
		t.Errorf("boundary plan rejected: %v", err)
	}
}

// TestDeriveSeed: nearby indexes must land far apart (no aliasing between
// per-flow fault patterns).
func TestDeriveSeed(t *testing.T) {
	seen := make(map[int64]bool)
	for i := 0; i < 100; i++ {
		s := DeriveSeed(1, i)
		if seen[s] {
			t.Fatalf("DeriveSeed(1, %d) collides", i)
		}
		seen[s] = true
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("different base seeds derive the same flow seed")
	}
}

// TestScheduleDeterministic: same seed ⇒ same kill schedule; offsets are
// strictly increasing and inside [Min·(i+1), Max·(i+1)].
func TestScheduleDeterministic(t *testing.T) {
	s := Schedule{Seed: 17, Min: 100 * time.Millisecond, Max: 300 * time.Millisecond}
	var prev time.Duration
	for i := 0; i < 10; i++ {
		at := s.At(i)
		if again := s.At(i); again != at {
			t.Fatalf("Schedule.At(%d) not deterministic: %v then %v", i, at, again)
		}
		if at <= prev {
			t.Fatalf("Schedule.At(%d) = %v not after At(%d) = %v", i, at, i-1, prev)
		}
		lo := time.Duration(i+1) * s.Min
		hi := time.Duration(i+1) * s.Max
		if at < lo || at > hi {
			t.Fatalf("Schedule.At(%d) = %v outside [%v, %v]", i, at, lo, hi)
		}
		prev = at
	}
	if (Schedule{Seed: 17, Min: time.Second, Max: 0}).At(0) != time.Second {
		t.Fatal("Max < Min should clamp to Min")
	}
}

// TestWireHookMatchesApply: the in-process hook and Apply share the fault
// machine — for a drop/corrupt-only plan they make identical per-datagram
// decisions.
func TestWireHookMatchesApply(t *testing.T) {
	plan := Plan{Seed: 23, PGoodBad: 0.1, PBadGood: 0.3, LossGood: 0.05, LossBad: 0.7, Corrupt: 0.1}
	in := frames(1000)

	applied, _ := replay(t, plan, in)

	inj, err := NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	hook := inj.WireHook()
	var hooked [][]byte
	for i, f := range in {
		// The hook mutates in place; feed it a copy like the broadcaster's
		// pump does.
		b := append([]byte(nil), f...)
		if out := hook(uint64(i), b); out != nil {
			hooked = append(hooked, out)
		}
	}
	if len(applied) != len(hooked) {
		t.Fatalf("Apply delivered %d, WireHook delivered %d", len(applied), len(hooked))
	}
	for i := range applied {
		if !bytes.Equal(applied[i], hooked[i]) {
			t.Fatalf("datagram %d differs between Apply and WireHook", i)
		}
	}
}
