package chaos

import (
	"net"
	"testing"
	"time"
)

// startEcho runs a tiny UDP echo server and returns its address. The
// cleanup closes it.
func startEcho(t *testing.T) string {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	go func() {
		buf := make([]byte, 64*1024)
		for {
			n, raddr, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			conn.WriteToUDP(buf[:n], raddr)
		}
	}()
	return conn.LocalAddr().String()
}

// dialProxy connects a UDP client socket to the proxy.
func dialProxy(t *testing.T, p *Proxy) *net.UDPConn {
	t.Helper()
	raddr, err := net.ResolveUDPAddr("udp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// TestProxyTransparentRelay: with zero plans the proxy is an invisible NAT
// box — every datagram echoes back intact.
func TestProxyTransparentRelay(t *testing.T) {
	echo := startEcho(t)
	p, err := NewProxy("127.0.0.1:0", echo, ProxyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn := dialProxy(t, p)
	buf := make([]byte, 1024)
	for i := 0; i < 20; i++ {
		msg := []byte{byte(i), 0xAB, byte(i * 3)}
		if _, err := conn.Write(msg); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatalf("round-trip %d: %v", i, err)
		}
		if string(buf[:n]) != string(msg) {
			t.Fatalf("round-trip %d: sent %v, got %v", i, msg, buf[:n])
		}
	}
	down, up := p.Stats()
	if down.Datagrams == 0 || up.Datagrams == 0 {
		t.Fatalf("proxy saw no traffic: down %v, up %v", down, up)
	}
	if down.Dropped+up.Dropped+down.Corrupted+up.Corrupted != 0 {
		t.Fatalf("transparent proxy reported damage: down %v, up %v", down, up)
	}
}

// TestProxyInjectsLoss: a lossy Down plan drops some echoes; the client
// sees fewer replies than requests and the proxy's stats own the
// difference.
func TestProxyInjectsLoss(t *testing.T) {
	echo := startEcho(t)
	p, err := NewProxy("127.0.0.1:0", echo, ProxyOptions{
		Down: Plan{Seed: 42, LossGood: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn := dialProxy(t, p)
	const sent = 100
	got := 0
	buf := make([]byte, 1024)
	for i := 0; i < sent; i++ {
		if _, err := conn.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
		if _, err := conn.Read(buf); err == nil {
			got++
		}
	}
	down, _ := p.Stats()
	if down.Dropped == 0 {
		t.Fatal("50% loss plan dropped nothing")
	}
	if got == sent {
		t.Fatal("client received every echo through a 50% lossy proxy")
	}
	if got == 0 {
		t.Fatal("client received nothing — loss plan dropped everything")
	}
}

// TestProxyBlackholeSwitch: SetBlackhole(true) silences the wire both ways;
// flipping it back restores service on the same flow.
func TestProxyBlackholeSwitch(t *testing.T) {
	echo := startEcho(t)
	p, err := NewProxy("127.0.0.1:0", echo, ProxyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn := dialProxy(t, p)
	buf := make([]byte, 1024)
	roundTrip := func() bool {
		conn.Write([]byte("ping"))
		conn.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
		_, err := conn.Read(buf)
		return err == nil
	}
	if !roundTrip() {
		t.Fatal("no echo before the blackhole")
	}
	p.SetBlackhole(true)
	if roundTrip() {
		t.Fatal("echo came through a total blackhole")
	}
	p.SetBlackhole(false)
	// The flow may need a beat for straggler deadlines; retry briefly.
	ok := false
	for i := 0; i < 20 && !ok; i++ {
		ok = roundTrip()
	}
	if !ok {
		t.Fatal("service did not recover after the blackhole lifted")
	}
}

// TestProxyPerFlowSeeds: two client flows through the same lossy proxy see
// different fault patterns (per-flow derived seeds), while the same flow
// replayed through a fresh proxy sees the same pattern.
func TestProxyPerFlowSeeds(t *testing.T) {
	pattern := func(conn *net.UDPConn, n int) string {
		buf := make([]byte, 1024)
		out := make([]byte, n)
		for i := 0; i < n; i++ {
			conn.Write([]byte{byte(i)})
			conn.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
			if _, err := conn.Read(buf); err == nil {
				out[i] = '1'
			} else {
				out[i] = '0'
			}
		}
		return string(out)
	}

	echo := startEcho(t)
	opts := ProxyOptions{Down: Plan{Seed: 99, LossGood: 0.4}}
	p, err := NewProxy("127.0.0.1:0", echo, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	a := pattern(dialProxy(t, p), 60)
	b := pattern(dialProxy(t, p), 60)
	if a == b {
		t.Fatalf("two flows saw the identical loss pattern %q — per-flow seeds not derived", a)
	}

	// Flow replay: a fresh proxy with the same options gives its first flow
	// the same derived seed, hence the same loss pattern.
	p2, err := NewProxy("127.0.0.1:0", echo, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if c := pattern(dialProxy(t, p2), 60); c != a {
		t.Fatalf("first flow of a fresh proxy saw %q, want replay of %q", c, a)
	}
}
