package chaos_test

import (
	"context"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/scheme"
	"repro/internal/station"
	"repro/internal/wire"
	"repro/internal/workload"
)

// TestChaosSoak is the package's end-to-end drill: a fleet of wire clients
// answers queries through the fault proxy — Gilbert-Elliott bursty loss,
// corruption, duplication, reordering — while a deterministic schedule
// kills the broadcaster mid-run and restarts it on the same port. The
// assertions are the PR's promises:
//
//   - the run returns (zero hung sessions, even across the outage),
//   - every outcome is accounted: Agg.N + Errors + Degraded + Refused ==
//     Queries — nothing is silently dropped,
//   - most queries still answer correctly (every completed answer is
//     Dijkstra-verified inside the fleet driver),
//   - the proxy actually injected damage (the soak is not vacuous).
//
// Locally it runs ~4 s; CI sets CHAOS_SECONDS for the long soak. Skipped
// under -short.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	soak := 4 * time.Second
	if s := os.Getenv("CHAOS_SECONDS"); s != "" {
		secs, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("CHAOS_SECONDS=%q: %v", s, err)
		}
		soak = time.Duration(secs) * time.Second
	}

	g := conformance.Network(t, 250, 350, 7)
	srv, err := core.NewNR(g, core.Options{Regions: 8, Segments: true, SquareCells: true})
	if err != nil {
		t.Fatal(err)
	}
	st, err := station.New(srv.Cycle(), station.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Stop)

	// A short janitor horizon: a zombie remote (its client gave up with
	// every bye lost) parks its pump and, on a virtual clock, holds the
	// station; the janitor must reap it well inside the soak window.
	bopts := wire.BroadcasterOptions{IdleTimeout: 2 * time.Second}
	b, err := wire.NewBroadcaster("127.0.0.1:0", st, bopts)
	if err != nil {
		t.Fatal(err)
	}
	addr := b.Addr().String() // pinned: the restarted broadcaster reuses it

	// The weather between fleet and broadcaster: bursty loss (mean burst
	// ~3 datagrams, ~14% stationary bad time), a little corruption (the
	// frame CRC must eat it), duplication and mild reordering.
	proxy, err := chaos.NewProxy("127.0.0.1:0", addr, chaos.ProxyOptions{
		Down: chaos.Plan{
			Seed:     2026,
			PGoodBad: 0.05, PBadGood: 0.3,
			LossGood: 0.01, LossBad: 0.7,
			Corrupt: 0.02, Duplicate: 0.02, Reorder: 0.05,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	w := workload.Generate(g, 30, st.Len(), 4)
	opts := fleet.Options{
		Clients:  8,
		Queries:  1 << 30, // effectively unbounded; Duration is the stop
		Duration: soak,
		Loss:     0.02,
		Seed:     41,
		// The resilience machinery under test: per-query deadline (degraded,
		// never hung), and enough redial headroom to ride out the kill.
		QueryDeadline: 3 * time.Second,
		Wire: wire.ReceiverOptions{
			Timeout: 150 * time.Millisecond, Retries: 3,
			Redial: 3, DialTimeout: 2 * time.Second,
		},
	}

	type outcome struct {
		res fleet.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := fleet.RunRemote(context.Background(), proxy.Addr(), scheme.Server(srv), w, opts)
		done <- outcome{res, err}
	}()

	// The kill schedule: deterministic from its seed, like every fault in
	// this package. Kill the broadcaster partway in, hold a short outage,
	// restart on the same port with the same station.
	sched := chaos.Schedule{Seed: 7, Min: soak / 4, Max: soak / 3}
	outage := 400 * time.Millisecond
	time.Sleep(sched.At(0))
	b.Close()
	time.Sleep(outage)
	b2, err := wire.NewBroadcaster(addr, st, bopts)
	if err != nil {
		t.Fatalf("restarting broadcaster on %s: %v", addr, err)
	}
	defer b2.Close()

	// Zero hung sessions: the run must return on its own well before a
	// generous wall-clock ceiling (Duration + deadline + dial budgets).
	var out outcome
	select {
	case out = <-done:
	case <-time.After(soak + 30*time.Second):
		t.Fatal("fleet hung: RunRemote did not return after the soak window")
	}
	if out.err != nil {
		t.Fatalf("RunRemote: %v", out.err)
	}
	res := out.res

	// Full accounting: no outcome silently dropped.
	if got := res.Agg.N + res.Errors + res.Degraded + res.Refused; got != res.Queries {
		t.Fatalf("accounting leak: %d correct + %d errors + %d degraded + %d refused != %d queries",
			res.Agg.N, res.Errors, res.Degraded, res.Refused, res.Queries)
	}
	if res.Queries == 0 {
		t.Fatal("soak issued no queries")
	}
	// Most answers still land, and land correctly (the fleet driver
	// Dijkstra-verifies every completed answer; wrong distances count as
	// errors and would drag this ratio down).
	if ratio := float64(res.Agg.N) / float64(res.Queries); ratio < 0.75 {
		t.Errorf("only %.0f%% of %d queries answered correctly (%d errors, %d degraded, %d refused)",
			ratio*100, res.Queries, res.Errors, res.Degraded, res.Refused)
	}
	t.Logf("chaos soak: %d queries, %d correct, %d errors, %d degraded, %d refused in %v",
		res.Queries, res.Agg.N, res.Errors, res.Degraded, res.Refused, res.Elapsed.Round(time.Millisecond))

	// The weather must have actually happened.
	down, _ := proxy.Stats()
	t.Logf("chaos down: %v", down)
	if down.Dropped == 0 || down.Corrupted == 0 {
		t.Errorf("proxy injected no damage (%v) — the soak is vacuous", down)
	}
	// And clients must have felt it: wire-level losses surface in the
	// missed-packet accounting rather than disappearing.
	if res.MissedPackets == 0 {
		t.Errorf("no wire losses recorded despite %d dropped datagrams", down.Dropped)
	}
}
