package chaos

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ProxyOptions shapes a Proxy. Down faults the broadcaster→client
// direction (the broadcast itself — where almost all the bytes flow); Up
// faults client→broadcaster (hello/want/bye control frames). Each flow
// (distinct client address) gets its own injector pair seeded by
// DeriveSeed(plan.Seed, flowIndex), so fault patterns are deterministic
// per flow but uncorrelated across flows.
type ProxyOptions struct {
	Down, Up Plan

	// IdleTimeout expires a flow whose client has gone silent (default
	// 1 minute — comfortably past the wire's own janitor horizon, so the
	// proxy never tears down a flow the broadcaster still considers live).
	IdleTimeout time.Duration
}

// Proxy is a netem-style UDP fault box: clients dial the proxy's address
// instead of the broadcaster's, and every datagram through it runs the
// direction's fault plan. It is NAT-shaped — one upstream socket per
// client flow — so the broadcaster sees one remote per real client and
// replies route back through the right flow.
type Proxy struct {
	opts     ProxyOptions
	upstream *net.UDPAddr
	conn     *net.UDPConn // client-facing socket

	mu        sync.Mutex
	flows     map[string]*flow
	nextFlow  int
	closed    bool
	blackhole atomic.Bool // manual total outage switch (SetBlackhole)

	wg sync.WaitGroup
}

// flow is one client's NAT entry: its own upstream socket and injector
// pair.
type flow struct {
	client   *net.UDPAddr
	up       *net.UDPConn // connected to the upstream broadcaster
	injUp    *Injector    // client → broadcaster
	injDown  *Injector    // broadcaster → client
	lastSeen atomic.Int64 // unix nanos of the last client datagram
}

// NewProxy starts a fault proxy listening on listen (e.g. "127.0.0.1:0")
// and relaying to the broadcaster at upstream. Close releases it.
func NewProxy(listen, upstream string, opts ProxyOptions) (*Proxy, error) {
	if err := opts.Down.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Up.Validate(); err != nil {
		return nil, err
	}
	if opts.IdleTimeout <= 0 {
		opts.IdleTimeout = time.Minute
	}
	uaddr, err := net.ResolveUDPAddr("udp", upstream)
	if err != nil {
		return nil, fmt.Errorf("chaos: upstream %q: %w", upstream, err)
	}
	laddr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, fmt.Errorf("chaos: listen %q: %w", listen, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	p := &Proxy{
		opts:     opts,
		upstream: uaddr,
		conn:     conn,
		flows:    make(map[string]*flow),
	}
	p.wg.Add(1)
	go p.serve()
	return p, nil
}

// Addr returns the client-facing address — what receivers should Dial.
func (p *Proxy) Addr() string { return p.conn.LocalAddr().String() }

// SetBlackhole switches a manual total outage on or off, both directions:
// the schedulable stand-in for "the route is gone" that a test flips
// around a broadcaster kill window.
func (p *Proxy) SetBlackhole(on bool) { p.blackhole.Store(on) }

// Close tears the proxy down: the client socket, every flow's upstream
// socket, and the relay goroutines.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	flows := make([]*flow, 0, len(p.flows))
	for _, f := range p.flows { //air:nondeterministic "flow close order is irrelevant; each flow tears down independently"
		flows = append(flows, f)
	}
	p.mu.Unlock()

	err := p.conn.Close()
	for _, f := range flows {
		f.up.Close()
	}
	p.wg.Wait()
	return err
}

// Stats sums the damage applied across all flows, per direction.
func (p *Proxy) Stats() (down, up Stats) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.flows { //air:nondeterministic "Stats.Add is commutative counter accumulation; the sum is order-independent"
		down.Add(f.injDown.Stats())
		up.Add(f.injUp.Stats())
	}
	return down, up
}

// serve is the client-facing read loop: route each datagram to its flow,
// run the Up plan, forward the survivors upstream.
func (p *Proxy) serve() {
	defer p.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, raddr, err := p.conn.ReadFromUDP(buf)
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				continue // transient; the client-facing socket stays up
			}
			return // closed
		}
		f, err := p.flowFor(raddr)
		if err != nil {
			return // proxy closing
		}
		f.lastSeen.Store(time.Now().UnixNano()) //air:nondeterministic "live-socket NAT bookkeeping; injected fault draws stay seeded"
		if p.blackhole.Load() {
			obsBlackholed.Inc()
			continue
		}
		p.mu.Lock()
		out := f.injUp.Apply(buf[:n])
		p.mu.Unlock()
		for _, d := range out {
			f.up.Write(d)
		}
	}
}

// flowFor returns (creating on first sight) the NAT entry for a client.
func (p *Proxy) flowFor(raddr *net.UDPAddr) (*flow, error) {
	key := raddr.String()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("chaos: proxy closed")
	}
	if f, ok := p.flows[key]; ok {
		p.mu.Unlock()
		return f, nil
	}
	idx := p.nextFlow
	p.nextFlow++
	p.mu.Unlock()

	up, err := net.DialUDP("udp", nil, p.upstream)
	if err != nil {
		return nil, err
	}
	injUp, _ := NewInjector(withSeed(p.opts.Up, DeriveSeed(p.opts.Up.Seed, idx)))
	injDown, _ := NewInjector(withSeed(p.opts.Down, DeriveSeed(p.opts.Down.Seed, idx)))
	f := &flow{client: raddr, up: up, injUp: injUp, injDown: injDown}
	f.lastSeen.Store(time.Now().UnixNano()) //air:nondeterministic "live-socket NAT bookkeeping; injected fault draws stay seeded"

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		up.Close()
		return nil, fmt.Errorf("chaos: proxy closed")
	}
	if other, ok := p.flows[key]; ok {
		// Lost an insert race (two datagrams from a new client in flight):
		// keep the established flow.
		p.mu.Unlock()
		up.Close()
		return other, nil
	}
	p.flows[key] = f
	p.mu.Unlock()

	p.wg.Add(1)
	go p.relayDown(f)
	return f, nil
}

// relayDown is one flow's broadcaster-facing read loop: run the Down plan,
// deliver the survivors to the client.
func (p *Proxy) relayDown(f *flow) {
	defer p.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		f.up.SetReadDeadline(time.Now().Add(p.opts.IdleTimeout)) //air:nondeterministic "live-socket idle deadline; injected fault draws stay seeded"
		n, err := f.up.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				// Idle flow: expire the NAT entry if the client has been
				// silent the whole window, else keep listening.
				if time.Since(time.Unix(0, f.lastSeen.Load())) >= p.opts.IdleTimeout { //air:nondeterministic "live-socket idle expiry; injected fault draws stay seeded"
					p.mu.Lock()
					if p.flows[f.client.String()] == f {
						delete(p.flows, f.client.String())
					}
					p.mu.Unlock()
					f.up.Close()
					return
				}
				continue
			}
			if !errors.Is(err, net.ErrClosed) {
				// Transient (ICMP port-unreachable while the broadcaster is
				// down mid-restart): the NAT entry must survive the outage so
				// the flow lights back up when the broadcaster returns.
				continue
			}
			return // closed
		}
		if p.blackhole.Load() {
			obsBlackholed.Inc()
			continue
		}
		p.mu.Lock()
		out := f.injDown.Apply(buf[:n])
		p.mu.Unlock()
		for _, d := range out {
			p.conn.WriteToUDP(d, f.client)
		}
	}
}

// withSeed returns the plan with its seed replaced — how the proxy derives
// per-flow plans from the direction's base plan.
func withSeed(p Plan, seed int64) Plan {
	p.Seed = seed
	return p
}
