// Package pq provides an indexed binary min-heap keyed by float64.
//
// Items are small non-negative integers (node IDs); the heap supports
// decrease-key in O(log n), which Dijkstra and A* rely on. A position index
// makes Contains and DecreaseKey O(1) lookups.
package pq

// Min is an indexed min-heap. The zero value is not usable; call New.
type Min struct {
	items []int32   // heap order
	keys  []float64 // parallel to items
	pos   []int32   // pos[item] = index in items, or -1
}

// New returns a heap able to hold items in [0, n).
func New(n int) *Min {
	pos := make([]int32, n)
	for i := range pos {
		pos[i] = -1
	}
	return &Min{pos: pos}
}

// Len returns the number of items currently in the heap.
func (h *Min) Len() int { return len(h.items) }

// Contains reports whether item is in the heap.
func (h *Min) Contains(item int32) bool { return h.pos[item] >= 0 }

// Key returns the current key of item; item must be contained.
func (h *Min) Key(item int32) float64 { return h.keys[h.pos[item]] }

// Push inserts item with the given key. It panics if the item is already
// contained (use DecreaseKey or PushOrDecrease instead).
func (h *Min) Push(item int32, key float64) {
	if h.pos[item] >= 0 {
		panic("pq: Push of item already in heap")
	}
	h.items = append(h.items, item)
	h.keys = append(h.keys, key)
	h.pos[item] = int32(len(h.items) - 1)
	h.up(len(h.items) - 1)
}

// DecreaseKey lowers the key of a contained item. It panics if the item is
// absent; keys may only decrease (a larger key is ignored).
func (h *Min) DecreaseKey(item int32, key float64) {
	i := h.pos[item]
	if i < 0 {
		panic("pq: DecreaseKey of item not in heap")
	}
	if key >= h.keys[i] {
		return
	}
	h.keys[i] = key
	h.up(int(i))
}

// PushOrDecrease inserts the item or lowers its key, whichever applies.
// It reports whether the heap changed.
func (h *Min) PushOrDecrease(item int32, key float64) bool {
	if i := h.pos[item]; i >= 0 {
		if key >= h.keys[i] {
			return false
		}
		h.keys[i] = key
		h.up(int(i))
		return true
	}
	h.Push(item, key)
	return true
}

// Pop removes and returns the minimum item and its key. It panics on an
// empty heap.
func (h *Min) Pop() (int32, float64) {
	if len(h.items) == 0 {
		panic("pq: Pop of empty heap")
	}
	item, key := h.items[0], h.keys[0]
	last := len(h.items) - 1
	h.swap(0, last)
	h.items = h.items[:last]
	h.keys = h.keys[:last]
	h.pos[item] = -1
	if last > 0 {
		h.down(0)
	}
	return item, key
}

// Reset empties the heap and grows its ID space to hold items in [0, n) if
// needed, retaining capacity. Cheaper than New when the same heap is reused
// across many searches on the same graph.
func (h *Min) Reset(n int) {
	for _, it := range h.items {
		h.pos[it] = -1
	}
	h.items = h.items[:0]
	h.keys = h.keys[:0]
	if n > len(h.pos) {
		grown := make([]int32, n)
		copy(grown, h.pos)
		for i := len(h.pos); i < n; i++ {
			grown[i] = -1
		}
		h.pos = grown
	}
}

func (h *Min) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.keys[parent] <= h.keys[i] {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Min) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.keys[l] < h.keys[smallest] {
			smallest = l
		}
		if r < n && h.keys[r] < h.keys[smallest] {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *Min) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.pos[h.items[i]] = int32(i)
	h.pos[h.items[j]] = int32(j)
}
