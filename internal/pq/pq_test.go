package pq

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPushPopOrdering(t *testing.T) {
	h := New(10)
	keys := []float64{5, 1, 4, 2, 3}
	for i, k := range keys {
		h.Push(int32(i), k)
	}
	var got []float64
	for h.Len() > 0 {
		_, k := h.Pop()
		got = append(got, k)
	}
	if !sort.Float64sAreSorted(got) {
		t.Errorf("pop order not sorted: %v", got)
	}
}

func TestDecreaseKey(t *testing.T) {
	h := New(4)
	h.Push(0, 10)
	h.Push(1, 20)
	h.Push(2, 30)
	h.DecreaseKey(2, 5)
	if item, k := h.Pop(); item != 2 || k != 5 {
		t.Errorf("got (%d, %v), want (2, 5)", item, k)
	}
	// Increasing via DecreaseKey is a no-op.
	h.DecreaseKey(1, 100)
	if k := h.Key(1); k != 20 {
		t.Errorf("key rose to %v", k)
	}
}

func TestPushOrDecrease(t *testing.T) {
	h := New(2)
	if !h.PushOrDecrease(0, 7) {
		t.Error("first push should change the heap")
	}
	if h.PushOrDecrease(0, 9) {
		t.Error("raising a key should not change the heap")
	}
	if !h.PushOrDecrease(0, 3) {
		t.Error("lowering a key should change the heap")
	}
	if _, k := h.Pop(); k != 3 {
		t.Errorf("key %v, want 3", k)
	}
}

func TestContains(t *testing.T) {
	h := New(3)
	h.Push(1, 1)
	if !h.Contains(1) || h.Contains(0) {
		t.Error("containment wrong after push")
	}
	h.Pop()
	if h.Contains(1) {
		t.Error("containment wrong after pop")
	}
}

func TestReset(t *testing.T) {
	h := New(5)
	for i := int32(0); i < 5; i++ {
		h.Push(i, float64(i))
	}
	h.Reset(0)
	if h.Len() != 0 {
		t.Fatalf("len %d after reset", h.Len())
	}
	for i := int32(0); i < 5; i++ {
		if h.Contains(i) {
			t.Fatalf("item %d still contained after reset", i)
		}
	}
	h.Push(3, 1) // must not panic
}

func TestPanicsOnMisuse(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("pop empty", func() { New(1).Pop() })
	expectPanic("double push", func() {
		h := New(1)
		h.Push(0, 1)
		h.Push(0, 2)
	})
	expectPanic("decrease absent", func() { New(1).DecreaseKey(0, 1) })
}

// TestHeapSortProperty: popping all items yields the keys in sorted order,
// for arbitrary inputs (heap sort equivalence).
func TestHeapSortProperty(t *testing.T) {
	f := func(keys []float64) bool {
		if len(keys) > 512 {
			keys = keys[:512]
		}
		for i, k := range keys {
			if k != k { // NaN keys are not meaningful priorities
				keys[i] = 0
			}
		}
		h := New(len(keys))
		for i, k := range keys {
			h.Push(int32(i), k)
		}
		prev := math.Inf(-1)
		for h.Len() > 0 {
			_, k := h.Pop()
			if k < prev {
				return false
			}
			prev = k
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDecreaseKeyProperty: with random interleaved decrease-key operations,
// the final pop sequence equals the sorted final keys.
func TestDecreaseKeyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(64)
		h := New(n)
		final := make([]float64, n)
		for i := 0; i < n; i++ {
			final[i] = rng.Float64() * 100
			h.Push(int32(i), final[i])
		}
		for ops := 0; ops < n; ops++ {
			it := int32(rng.Intn(n))
			if h.Contains(it) {
				nk := h.Key(it) * rng.Float64()
				h.DecreaseKey(it, nk)
				final[it] = nk
			}
		}
		var popped []float64
		for h.Len() > 0 {
			_, k := h.Pop()
			popped = append(popped, k)
		}
		sort.Float64s(final)
		for i := range final {
			if popped[i] != final[i] {
				t.Fatalf("trial %d: pop %d = %v, want %v", trial, i, popped[i], final[i])
			}
		}
	}
}
