package servercache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/broadcast"
	"repro/internal/packet"
	"repro/internal/precompute"
)

// testCycle assembles a small deterministic cycle with an index section
// and two data sections, seeded by seed so distinct cycles differ.
func testCycle(t *testing.T, seed int64) *broadcast.Cycle {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mk := func(kind packet.Kind, n int) []packet.Packet {
		w := packet.NewWriter(kind)
		for i := 0; i < n; i++ {
			rec := make([]byte, 8+rng.Intn(60))
			rng.Read(rec)
			w.Add(byte(1+i%7), rec)
		}
		return w.Packets()
	}
	a := broadcast.NewAssembler()
	a.Append(packet.KindIndex, -1, "index", mk(packet.KindIndex, 3))
	a.Append(packet.KindData, 0, "R0", mk(packet.KindData, 9))
	a.Append(packet.KindData, 1, "R1", mk(packet.KindData, 6))
	c := a.Finish()
	c.SetVersion(uint32(seed))
	return c
}

// testBorder builds an n-region BorderData over nodes nodes by hand.
func testBorder(n, nodes int) *precompute.BorderData {
	b := &precompute.BorderData{
		MinDist:     make([][]float64, n),
		MaxDist:     make([][]float64, n),
		Traverse:    make([]precompute.RegionSet, n*n),
		CrossBorder: make([]bool, nodes),
		Elapsed:     1234 * time.Millisecond,
	}
	for i := 0; i < n; i++ {
		b.MinDist[i] = make([]float64, n)
		b.MaxDist[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			b.MinDist[i][j] = float64(i*n+j) * 0.5
			b.MaxDist[i][j] = float64(i*n+j) * 1.5
		}
	}
	for i := range b.Traverse {
		b.Traverse[i] = precompute.NewRegionSet(n)
		b.Traverse[i].Set(i % n)
	}
	for v := 0; v < nodes; v += 3 {
		b.CrossBorder[v] = true
	}
	return b
}

func equalCyclePackets(a, b *broadcast.Cycle) bool {
	if a.Len() != b.Len() || len(a.Sections) != len(b.Sections) {
		return false
	}
	for i := range a.Packets {
		p, q := a.Packets[i], b.Packets[i]
		if p.Kind != q.Kind || p.NextIndex != q.NextIndex || p.Version != q.Version ||
			string(p.Payload) != string(q.Payload) {
			return false
		}
	}
	return true
}

func TestDiskTierCycleRoundTrip(t *testing.T) {
	Flush()
	if err := EnableDisk(t.TempDir(), 0); err != nil {
		t.Fatal(err)
	}
	defer func() { Flush(); DisableDisk() }()

	key := Key{Network: "disk/a", Scheme: "EB", Params: "r=4", Version: 3}
	want := testCycle(t, 3)
	if CachedCycle(key) != nil {
		t.Fatal("cycle hit before Put")
	}
	PutCycle(key, want)
	got := CachedCycle(key)
	if got == nil {
		t.Fatal("cycle miss after Put")
	}
	if !equalCyclePackets(want, got) {
		t.Error("round-tripped cycle differs")
	}

	// Distinct versions of the same build key are distinct entries.
	key2 := key
	key2.Version = 4
	if CachedCycle(key2) != nil {
		t.Error("version 4 hit on version 3's entry")
	}
}

func TestDiskTierBorderRoundTrip(t *testing.T) {
	Flush()
	if err := EnableDisk(t.TempDir(), 0); err != nil {
		t.Fatal(err)
	}
	defer func() { Flush(); DisableDisk() }()

	key := Key{Network: "disk/b", Scheme: "NR", Params: "r=4"}
	want := testBorder(4, 120)
	if _, _, ok := CachedBorder(key); ok {
		t.Fatal("border hit before Put")
	}
	PutBorder(key, want, 4)
	got, n, ok := CachedBorder(key)
	if !ok || n != 4 {
		t.Fatalf("border miss after Put (ok=%v n=%d)", ok, n)
	}
	if got.Elapsed != want.Elapsed || len(got.CrossBorder) != len(want.CrossBorder) {
		t.Fatalf("border shape differs: %v/%d vs %v/%d",
			got.Elapsed, len(got.CrossBorder), want.Elapsed, len(want.CrossBorder))
	}
	for i := range want.MinDist {
		for j := range want.MinDist[i] {
			if got.MinDist[i][j] != want.MinDist[i][j] || got.MaxDist[i][j] != want.MaxDist[i][j] {
				t.Fatalf("distance matrix differs at %d,%d", i, j)
			}
		}
	}
	for i := range want.Traverse {
		if fmt.Sprint(got.Traverse[i]) != fmt.Sprint(want.Traverse[i]) {
			t.Fatalf("traverse set differs at %d", i)
		}
	}
	for i := range want.CrossBorder {
		if got.CrossBorder[i] != want.CrossBorder[i] {
			t.Fatalf("cross-border flag differs at %d", i)
		}
	}
}

// TestDiskTierConcurrent hammers the tier from many goroutines (run under
// -race): concurrent puts and gets across overlapping keys must stay
// consistent, and every hit must decode to the cycle put under that key.
func TestDiskTierConcurrent(t *testing.T) {
	Flush()
	if err := EnableDisk(t.TempDir(), 0); err != nil {
		t.Fatal(err)
	}
	defer func() { Flush(); DisableDisk() }()

	const keys = 8
	cycles := make([]*broadcast.Cycle, keys)
	for i := range cycles {
		cycles[i] = testCycle(t, int64(100+i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				k := (w + i) % keys
				key := Key{Network: "disk/conc", Scheme: "EB", Params: fmt.Sprintf("k=%d", k)}
				if i%3 == 0 {
					PutCycle(key, cycles[k])
					continue
				}
				if got := CachedCycle(key); got != nil && !equalCyclePackets(got, cycles[k]) {
					t.Errorf("key %d decoded to a different cycle", k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestDiskTierSurvivesRestart proves the warm-restart contract at the
// servercache layer: a fresh EnableDisk on the same directory (a new
// process, as far as the tier is concerned) serves the prior tier's
// entries back.
func TestDiskTierSurvivesRestart(t *testing.T) {
	Flush()
	dir := t.TempDir()
	if err := EnableDisk(dir, 0); err != nil {
		t.Fatal(err)
	}
	key := Key{Network: "disk/restart", Scheme: "DJ", Params: ""}
	want := testCycle(t, 9)
	PutCycle(key, want)
	Flush()
	DisableDisk()

	if err := EnableDisk(dir, 0); err != nil {
		t.Fatal(err)
	}
	defer func() { Flush(); DisableDisk() }()
	got := CachedCycle(key)
	if got == nil {
		t.Fatal("restarted tier missed a persisted cycle")
	}
	if !equalCyclePackets(want, got) {
		t.Error("restarted tier decoded a different cycle")
	}
}
