package servercache

import (
	"fmt"
	"io"
	"log"
	"sync"

	"repro/internal/broadcast"
	"repro/internal/diskcache"
	"repro/internal/precompute"
)

// The disk tier persists the two build artifacts worth surviving a process
// restart — assembled broadcast cycles and the border pre-computation —
// under the same version-keyed identity the in-memory cache uses. A warm
// restart then skips the Dijkstra storm: the deploy layer loads the cycle
// straight from an mmap'd cache entry (page-cache, not heap) and wraps it
// in a server, instead of rebuilding.
//
// The tier is deliberately narrow: values cached in memory are arbitrary
// Go objects, but only codec-backed artifacts cross the process boundary.
// Everything else rebuilds as before.
var (
	diskMu sync.RWMutex
	disk   *diskcache.Cache
	// pinned keeps the mmaps backing decoded cycles alive: a cycle returned
	// by CachedCycle aliases its mapping for the process lifetime, exactly
	// like in-memory cache entries live forever. DisableDisk unmaps them,
	// so it must only run when those cycles are no longer in use (tests).
	pinned []*diskcache.Mapping
)

// EnableDisk attaches a persistent cache tier rooted at dir with an LRU
// byte budget (0 = unbounded). Safe to call once at process start; calling
// again replaces the tier (the previous one is closed, its mappings
// released as in DisableDisk).
func EnableDisk(dir string, maxBytes int64) error {
	c, err := diskcache.Open(dir, maxBytes)
	if err != nil {
		return fmt.Errorf("servercache: disk tier: %w", err)
	}
	diskMu.Lock()
	defer diskMu.Unlock()
	closeDiskLocked()
	disk = c
	return nil
}

// DisableDisk detaches the disk tier and releases every mapping handed out
// through CachedCycle. Cycles previously returned by CachedCycle become
// invalid — only tests tear down the tier mid-process.
func DisableDisk() {
	diskMu.Lock()
	defer diskMu.Unlock()
	closeDiskLocked()
}

func closeDiskLocked() {
	for _, m := range pinned {
		m.Close()
	}
	pinned = nil
	if disk != nil {
		disk.Close()
		disk = nil
	}
}

// Disk returns the attached disk tier, or nil when none is enabled.
func Disk() *diskcache.Cache {
	diskMu.RLock()
	defer diskMu.RUnlock()
	return disk
}

// id canonicalizes a Key plus an artifact part name ("cycle", "border")
// into the disk tier's string key. NUL separators keep distinct fields
// from colliding ("a"+"bc" vs "ab"+"c").
func (k Key) id(part string) string {
	return fmt.Sprintf("%s\x00%s\x00%s\x00v%d\x00%s", k.Network, k.Scheme, k.Params, k.Version, part)
}

// PutCycleStream persists a cycle under key by streaming it through write
// (typically core.StreamEBCycle or broadcast.EncodeCycle curried over a
// cycle), so the encoded form never materializes in memory. A nil disk
// tier, or any failure, is non-fatal: the cache is an accelerator, and a
// build that cannot persist still serves — the error is logged and the
// partial entry discarded.
func PutCycleStream(key Key, write func(io.Writer) error) {
	d := Disk()
	if d == nil {
		return
	}
	w, err := d.Create(key.id("cycle"))
	if err != nil {
		log.Printf("servercache: persist cycle %s/%s v%d: %v", key.Network, key.Scheme, key.Version, err)
		return
	}
	if err := write(w); err != nil {
		w.Abort()
		log.Printf("servercache: persist cycle %s/%s v%d: %v", key.Network, key.Scheme, key.Version, err)
		return
	}
	if err := w.Commit(); err != nil {
		log.Printf("servercache: persist cycle %s/%s v%d: %v", key.Network, key.Scheme, key.Version, err)
	}
}

// PutCycle persists an in-memory cycle under key (nil tier: no-op).
func PutCycle(key Key, c *broadcast.Cycle) {
	PutCycleStream(key, func(w io.Writer) error { return broadcast.EncodeCycle(w, c) })
}

// CachedCycle loads the cycle persisted under key from the disk tier,
// serving packet payloads directly out of an mmap'd cache entry: decoding
// a continent-scale cycle costs page-cache, not heap. Returns nil when the
// tier is disabled, the entry is absent, or it fails validation (corrupt
// entries are dropped by the tier; a decode failure is logged). The cycle
// stays valid until DisableDisk.
func CachedCycle(key Key) *broadcast.Cycle {
	diskMu.Lock()
	defer diskMu.Unlock()
	if disk == nil {
		return nil
	}
	m, ok := disk.Map(key.id("cycle"))
	if !ok {
		return nil
	}
	c, err := broadcast.DecodeCycle(m.Payload())
	if err != nil {
		m.Close()
		log.Printf("servercache: cached cycle %s/%s v%d rejected: %v", key.Network, key.Scheme, key.Version, err)
		return nil
	}
	pinned = append(pinned, m)
	return c
}

// PutBorder persists the border pre-computation for n regions under key
// (nil tier: no-op; failures logged, non-fatal).
func PutBorder(key Key, b *precompute.BorderData, n int) {
	d := Disk()
	if d == nil {
		return
	}
	w, err := d.Create(key.id("border"))
	if err == nil {
		if err = precompute.EncodeBorder(w, b, n); err != nil {
			w.Abort()
		} else {
			err = w.Commit()
		}
	}
	if err != nil {
		log.Printf("servercache: persist border %s/%s v%d: %v", key.Network, key.Scheme, key.Version, err)
	}
}

// CachedBorder loads the border pre-computation persisted under key, with
// the region count it was computed for. The decoded matrices own their
// memory (they are modest: n×n), so no mapping is pinned. Returns ok=false
// when the tier is disabled or the entry is absent or invalid.
func CachedBorder(key Key) (*precompute.BorderData, int, bool) {
	d := Disk()
	if d == nil {
		return nil, 0, false
	}
	raw, ok := d.Get(key.id("border"))
	if !ok {
		return nil, 0, false
	}
	b, n, err := precompute.DecodeBorder(raw)
	if err != nil {
		log.Printf("servercache: cached border %s/%s v%d rejected: %v", key.Network, key.Scheme, key.Version, err)
		return nil, 0, false
	}
	return b, n, true
}
