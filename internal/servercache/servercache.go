// Package servercache is the shared immutable build cache for air-index
// servers and everything expensive on the way to one: generated networks,
// region pre-computation, assembled broadcast cycles.
//
// Building a server is orders of magnitude more expensive than answering a
// query on it (one Dijkstra per border node, then cycle assembly), and the
// repo's consumers — the experiment harness regenerating every table and
// figure, the conformance fuzzer revisiting (network, scheme) pairs, the
// fleet and the cmd front ends — kept rebuilding identical cycles from
// scratch. Everything a build produces is immutable after construction
// (graphs, cycles, border data; clients carry all per-query state), so one
// cache entry can be shared freely across goroutines: a fuzz worker pool or
// a fleet shares one decoded air instead of N copies.
//
// Entries build at most once: concurrent Gets for the same key block on a
// single build (singleflight via sync.Once) instead of duplicating it.
package servercache

import (
	"errors"
	"os"
	"sync"
	"time"

	"repro/internal/broadcast"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// Package-level instruments (DESIGN.md §10).
var (
	obsHits = obs.GetCounter("air_servercache_hits_total",
		"Gets served from an existing entry")
	obsMisses = obs.GetCounter("air_servercache_misses_total",
		"Gets that created the entry (build ran once)")
	obsEntries = obs.GetGauge("air_servercache_entries",
		"entries currently cached")
	obsBytes = obs.GetCounter("air_servercache_cycle_bytes_total",
		"on-air bytes of cached cycles (best effort: builds whose value exposes a cycle)")
	obsBuildSecs = obs.GetHistogram("air_servercache_build_seconds",
		"wall time of cache-miss builds",
		obs.ExpBuckets(0.001, 4, 8))
	obsTransient = obs.GetCounter("air_servercache_transient_errors_total",
		"builds that failed transiently (entry dropped so the next Get retries)")
)

// Key identifies one built artifact. The string fields are canonical so
// callers control exactly what "the same build" means.
type Key struct {
	// Network names the road network: preset/scale/seed or nodes/edges/seed.
	Network string
	// Scheme names what was built on it ("NR", "EB", "graph", "core", ...).
	Scheme string
	// Params captures every build parameter that changes the output
	// (regions, segmentation, landmarks, channel count, ...). A versioned
	// build additionally folds the identity of its update sequence in here
	// (internal/update signs the applied updates), because a version number
	// alone does not identify what the network looks like.
	Params string
	// Version is the broadcast-cycle version of a dynamic build
	// (internal/update); static builds leave it zero. Every version of a
	// network is its own immutable cache entry — rebuilds never invalidate,
	// they key differently.
	Version uint32
}

type entry struct {
	once sync.Once
	val  any
	err  error
}

var cache sync.Map // Key -> *entry

// Get returns the value cached under key, invoking build at most once
// across all concurrent callers. A deterministic build error is cached too —
// the same key produces the same error, so there is no point retrying. A
// transient error (see IsTransient: I/O failures, or anything the build
// wrapped with Transient) drops the entry instead, so the next Get for the
// key retries the build; callers already waiting on the failed build still
// observe the error. This matters once builds touch disk (the diskcache
// layer): ENOSPC or a failed mmap must not poison the key forever.
func Get[T any](key Key, build func() (T, error)) (T, error) {
	e, loaded := cache.LoadOrStore(key, &entry{})
	ent := e.(*entry)
	if loaded {
		obsHits.Inc()
	} else {
		obsMisses.Inc()
		obsEntries.Inc()
	}
	ent.once.Do(func() {
		started := time.Now()
		ent.val, ent.err = build()
		obsBuildSecs.Observe(time.Since(started).Seconds())
		if ent.err == nil {
			obsBytes.Add(cycleBytes(ent.val))
		}
	})
	if ent.err != nil {
		if IsTransient(ent.err) {
			// Drop exactly the entry we observed failing: a concurrent Get
			// may already have replaced it with a fresh (retrying) entry,
			// which must not be deleted out from under its builder.
			if cache.CompareAndDelete(key, e) {
				obsEntries.Dec()
				obsTransient.Inc()
			}
		}
		var zero T
		return zero, ent.err
	}
	return ent.val.(T), nil
}

// transientError marks a build failure as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string { return "transient: " + e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so Get treats it as retryable: the failed entry is
// dropped and the next Get for the key builds again. Build functions wrap
// environmental failures (disk full, flaky NFS, mmap limits) and leave
// deterministic ones (bad parameters, a graph that fails validation) bare.
// Returns nil for nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is a retryable build failure: anything
// wrapped by Transient, plus unwrapped OS-level I/O errors (path, syscall
// and link errors) — with disk in the build path those depend on the
// machine's state at build time, not on the key.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var t *transientError
	var pe *os.PathError
	var se *os.SyscallError
	var le *os.LinkError
	return errors.As(err, &t) || errors.As(err, &pe) || errors.As(err, &se) || errors.As(err, &le)
}

// Len returns the number of cached entries (tests and diagnostics).
func Len() int {
	n := 0
	cache.Range(func(any, any) bool { n++; return true })
	return n
}

// cycleBytes estimates the on-air footprint of a built value: cached
// servers and cached cycles both expose one. Anything else (graphs, border
// tables) reports zero — the metric tracks air bytes, not heap bytes.
func cycleBytes(val any) int64 {
	var c *broadcast.Cycle
	switch v := val.(type) {
	case *broadcast.Cycle:
		c = v
	case interface{ Cycle() *broadcast.Cycle }:
		c = v.Cycle()
	}
	if c == nil {
		return 0
	}
	return int64(c.Len()) * metrics.PacketBits / 8
}

// Flush drops every cached entry. Only tests need it.
func Flush() {
	cache.Range(func(k, _ any) bool { cache.Delete(k); return true })
	obsEntries.Set(0)
}
