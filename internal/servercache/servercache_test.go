package servercache

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetBuildsOncePerKey(t *testing.T) {
	Flush()
	var builds atomic.Int64
	key := Key{Network: "n1", Scheme: "NR", Params: "r=8"}
	build := func() (int, error) {
		builds.Add(1)
		return 42, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := Get(key, build)
			if err != nil || v != 42 {
				t.Errorf("Get = %v, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("%d builds for one key, want 1", builds.Load())
	}
	if _, err := Get(Key{Network: "n1", Scheme: "NR", Params: "r=16"}, build); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 2 {
		t.Fatalf("%d builds after distinct params, want 2", builds.Load())
	}
	if Len() != 2 {
		t.Fatalf("Len = %d, want 2", Len())
	}
}

// TestVersionKeysAreDistinct: every cycle version of a dynamic network is
// its own immutable entry — rebuilds key differently instead of
// invalidating.
func TestVersionKeysAreDistinct(t *testing.T) {
	Flush()
	builds := 0
	for _, v := range []uint32{0, 1, 2, 1} {
		got, err := Get(Key{Network: "n1", Scheme: "NR", Params: "r=8", Version: v}, func() (uint32, error) {
			builds++
			return v, nil
		})
		if err != nil || got != v {
			t.Fatalf("Get(v=%d) = %v, %v", v, got, err)
		}
	}
	if builds != 3 {
		t.Fatalf("%d builds for versions {0,1,2,1}, want 3", builds)
	}
}

func TestGetCachesErrors(t *testing.T) {
	Flush()
	sentinel := errors.New("deterministic build failure")
	builds := 0
	key := Key{Network: "bad", Scheme: "EB"}
	for i := 0; i < 3; i++ {
		_, err := Get(key, func() (int, error) {
			builds++
			return 0, sentinel
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("Get error = %v, want sentinel", err)
		}
	}
	if builds != 1 {
		t.Fatalf("%d builds for an erroring key, want 1", builds)
	}
}

// TestGetRetriesTransientErrors is the regression test for the
// cached-forever error bug: a transient failure (disk full, failed mmap)
// must drop the entry so the next Get retries, while deterministic errors
// stay cached (previous test). The third build succeeding proves the key
// was never poisoned.
func TestGetRetriesTransientErrors(t *testing.T) {
	Flush()
	key := Key{Network: "n1", Scheme: "NR", Params: "disk"}
	builds := 0
	got, err := Get(key, func() (int, error) {
		builds++
		if builds <= 2 {
			return 0, Transient(errors.New("disk full"))
		}
		return 7, nil
	})
	if err == nil {
		t.Fatal("first Get of a failing build succeeded")
	}
	if !IsTransient(err) {
		t.Fatalf("Transient error not recognized: %v", err)
	}
	for i := 0; i < 2; i++ {
		got, err = Get(key, func() (int, error) {
			builds++
			if builds <= 2 {
				return 0, Transient(errors.New("disk full"))
			}
			return 7, nil
		})
	}
	if err != nil || got != 7 {
		t.Fatalf("Get after transient failures = %v, %v; want 7, nil", got, err)
	}
	if builds != 3 {
		t.Fatalf("%d builds across 2 transient failures + success, want 3", builds)
	}
	if Len() != 1 {
		t.Fatalf("Len = %d after recovery, want 1", Len())
	}
	// The successful value is now cached: no further builds.
	if _, err := Get(key, func() (int, error) { builds++; return 0, errors.New("rebuilt") }); err != nil {
		t.Fatal(err)
	}
	if builds != 3 {
		t.Fatalf("recovered key rebuilt (%d builds)", builds)
	}
}

// TestIsTransientOSErrors: unwrapped OS-level I/O failures count as
// transient without explicit wrapping — a build that propagates a raw
// *os.PathError (ENOSPC, EMFILE) must not poison its key.
func TestIsTransientOSErrors(t *testing.T) {
	_, err := os.Open("/nonexistent/servercache/probe")
	if !IsTransient(err) {
		t.Errorf("os.PathError not transient: %v", err)
	}
	if !IsTransient(fmt.Errorf("build: %w", err)) {
		t.Error("wrapped os.PathError not transient")
	}
	if IsTransient(errors.New("regions must be a power of two")) {
		t.Error("deterministic error classified transient")
	}
	if IsTransient(nil) {
		t.Error("nil classified transient")
	}
}
