//go:build unix

package mmap

import (
	"fmt"
	"os"
	"syscall"
)

func mapFile(f *os.File, size int64) (*Data, error) {
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmap: %s: %w", f.Name(), err)
	}
	return &Data{b: b, munmap: syscall.Munmap}, nil
}
