// Package mmap provides read-only memory-mapped file views with a portable
// fallback. On unix the bytes live in the page cache — a multi-gigabyte
// cycle or CSR costs no Go heap — and the view stays valid after the file
// is unlinked (eviction-safe) until Close. On platforms without mmap the
// file is read into memory; callers keep the same contract either way.
package mmap

import (
	"fmt"
	"os"
)

// Data is a read-only view of a file's contents. Bytes must not be
// modified and must not be used after Close.
type Data struct {
	b      []byte
	munmap func([]byte) error
}

// Bytes returns the mapped contents.
func (d *Data) Bytes() []byte { return d.b }

// Close releases the view; the slice from Bytes is invalid afterwards.
func (d *Data) Close() error {
	b := d.b
	d.b = nil
	if b == nil || d.munmap == nil {
		return nil
	}
	return d.munmap(b)
}

// Open maps the named file read-only.
func Open(path string) (*Data, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	return File(f, info.Size())
}

// File maps size bytes of f read-only. The mapping is independent of f:
// the caller may close the file (and even unlink it) immediately after.
func File(f *os.File, size int64) (*Data, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mmap: empty file %s", f.Name())
	}
	return mapFile(f, size)
}
