//go:build !unix

package mmap

import (
	"fmt"
	"io"
	"os"
)

func mapFile(f *os.File, size int64) (*Data, error) {
	b := make([]byte, size)
	if _, err := io.ReadFull(f, b); err != nil {
		return nil, fmt.Errorf("mmap: %s: %w", f.Name(), err)
	}
	return &Data{b: b}, nil
}
