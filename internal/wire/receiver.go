package wire

import (
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/broadcast"
	"repro/internal/obs"
	"repro/internal/packet"
)

// Receiver-side instruments (DESIGN.md §12).
var (
	obsDead = obs.GetCounter("air_wire_dead_total",
		"receivers that declared the broadcaster gone (silence or bye past every retry and redial)")
	obsRedials = obs.GetCounter("air_wire_redials_total",
		"mid-stream re-dial attempts after broadcaster silence or bye")
	obsRestarts = obs.GetCounter("air_wire_restarts_total",
		"re-dials that found a broadcaster with a different cycle (stale subscription)")
)

// Typed receiver failures. They surface through broadcast.AbortFeed (for
// mid-query transport death) or as ordinary Dial errors; either way callers
// classify with errors.Is.
var (
	// ErrDead marks a broadcaster gone for good: silent past the retry
	// budget (and every configured redial), or it said bye and no redial
	// brought it back. Distinct from injected simulator loss, which never
	// kills a feed.
	ErrDead = errors.New("wire: broadcaster gone")
	// ErrRefused marks an admission refusal: the broadcaster answered with
	// a busy frame instead of a welcome. The client was shed, not lost.
	ErrRefused = errors.New("wire: broadcaster at capacity")
	// ErrRestarted marks a successful redial onto a broadcaster whose cycle
	// geometry (length or version) no longer matches the subscription: the
	// partial answer the client holds was built on air that no longer
	// exists. The receiver is stale; the session must re-attach fresh.
	ErrRestarted = errors.New("wire: broadcaster restarted with a different cycle")
)

// ReceiverOptions tune one wire subscription. The zero value is a lossless
// (no injected loss) receiver with a 256-packet credit window and a 2s
// silence timeout.
type ReceiverOptions struct {
	// Loss is the injected deterministic packet-loss rate in [0,1), drawn
	// with broadcast.Lost over (Seed, position) at serve time — the same
	// draw as the simulator, on top of whatever the real wire loses.
	Loss float64
	// Seed derives the injected loss pattern (and the dial backoff jitter).
	Seed int64
	// Window is the credit window in packets: how far ahead of the current
	// read position the broadcaster may stream. Default 256 — deep enough
	// that an attentive receiver never stalls the stream, shallow enough
	// that the in-flight bytes sit comfortably in a default socket buffer.
	Window int
	// Timeout bounds one silent wait for the next datagram; on expiry the
	// receiver re-sends its credit (the previous want datagram may itself
	// have been lost) and, after Retries consecutive expiries, declares the
	// wire dead (or re-dials, with Redial). Default 2s.
	Timeout time.Duration
	// Retries is the number of consecutive timeouts tolerated before the
	// feed gives up on the current socket. Default 4.
	Retries int
	// DialTimeout bounds the whole hello/welcome handshake. Within it the
	// hello is re-sent with capped jittered exponential backoff (not a
	// fixed interval: a cold-starting fleet must not synchronize into a
	// hello storm against a booting broadcaster). Default Retries*Timeout,
	// matching the old fixed-interval budget.
	DialTimeout time.Duration
	// Redial is how many reconnection attempts a mid-stream death (silence
	// past Retries, or a bye) is allowed before the feed aborts with
	// ErrDead. Each attempt is a fresh socket and handshake; a welcome with
	// the same cycle geometry resumes the stream in place (the missed air
	// is re-anchored a whole number of cycles ahead, so the partial answer
	// stays valid), a different geometry aborts with ErrRestarted. Default
	// 0: die on the first death, the right call for loopback tests and the
	// historical behavior.
	Redial int
}

// Receiver is a remote subscription to a wire broadcast: a broadcast.Feed
// (and Clocked, Prefetcher and Refreshable) over a connected UDP socket, so
// the ordinary Tuner — and every scheme client above it — runs on a remote
// broadcast exactly as on an in-process one. The receiver owns its socket
// reads: like station.Sub, it is single-goroutine on the client side,
// while the broadcaster side is concurrency-safe.
//
// Loss accounting mirrors the in-process feeds: a position the wire
// skipped past (datagram dropped by the network, rejected by CRC, or
// overtaken by reordering) is served as a corrupted reception carrying the
// correct packet kind from the welcome's kind schedule, counted in
// WireLost and — through the tuner that listened for it — in Tuner.Lost.
// Injected loss is applied at serve time on intact positions, keeping the
// received frame's kind, so a loopback receiver is bit-identical to an
// offline replay with equal (start, loss, seed).
//
// Position bookkeeping across redials: the client's positions are fixed at
// the original subscription's coordinates; a redial that lands on a later
// wire position re-anchors by a whole number of cycles (offset ≡ 0 mod L),
// so client position p is always served wire position p+offset with an
// identical cycle slot — content correctness survives the reconnect, and
// the client never observes positions moving backwards.
type Receiver struct {
	conn  *net.UDPConn
	raddr *net.UDPAddr
	opts  ReceiverOptions

	start    int
	cycleLen int
	version  uint32
	rate     int
	kinds    []packet.Kind

	limit  int // exclusive credit bound granted so far (client coords)
	clock  int // next global tick: everything below is served or slept over
	offset int // wire position minus client position; a multiple of cycleLen

	pending    packet.Packet
	pendingPos int
	hasPending bool

	corrupted    int
	wireLost     int
	redials      int
	unproductive int // redials since the last data frame actually arrived
	stale        bool

	dialDraw uint64 // monotonic draw index for backoff jitter
	readBuf  []byte
	sendBuf  []byte
	closed   bool
}

// Dial subscribes to the wire broadcaster at addr (host:port) and performs
// the hello/welcome handshake. The returned receiver tunes in at Start(),
// the absolute position of the first packet its subscription covers; wrap
// it in a tuner with broadcast.NewFeedTuner(rx, rx.Start()) and Close it
// when the query is done. A broadcaster at capacity answers with a busy
// frame, surfaced as an error wrapping ErrRefused.
func Dial(addr string, opts ReceiverOptions) (*Receiver, error) {
	if opts.Loss < 0 || opts.Loss >= 1 {
		return nil, fmt.Errorf("wire: loss rate %v outside [0,1)", opts.Loss)
	}
	if opts.Window <= 0 {
		opts.Window = 256
	}
	if opts.Window < 16 {
		opts.Window = 16
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 2 * time.Second
	}
	if opts.Retries <= 0 {
		opts.Retries = 4
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = time.Duration(opts.Retries) * opts.Timeout
	}
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	r := &Receiver{
		raddr:   raddr,
		opts:    opts,
		readBuf: make([]byte, 2048),
	}
	if err := r.connect(); err != nil {
		return nil, err
	}
	w, err := r.exchangeHello(time.Now().Add(opts.DialTimeout))
	if err != nil {
		// The hello may have landed with every welcome lost on the way
		// back; a bye releases the half-made subscription instead of
		// leaving a zombie remote parked on the broadcaster.
		r.abandon()
		return nil, err
	}
	r.start = int(w.Start)
	r.cycleLen = int(w.CycleLen)
	r.version = w.Version
	r.rate = int(w.Rate)
	r.kinds = w.Kinds
	r.clock = r.start
	r.limit = r.start + r.opts.Window // granted in the hello
	return r, nil
}

// connect dials a fresh socket to the broadcaster.
func (r *Receiver) connect() error {
	conn, err := net.DialUDP("udp", nil, r.raddr)
	if err != nil {
		return fmt.Errorf("wire: %w", err)
	}
	// Ask the kernel for room to hold a full credit window of datagrams.
	// The default socket buffer fits the default window with no headroom
	// (each ~155-byte frame is charged its skb truesize, ~832 bytes, and
	// 256 of those exactly exhaust a 212992-byte rcvbuf), so a burst after
	// a credit refill would tip it over and drop a datagram. Best effort:
	// the kernel clamps the request to rmem_max, and any remaining shortfall
	// surfaces honestly as wire loss, never as a wrong answer.
	conn.SetReadBuffer(readBufferFor(r.opts.Window))
	r.conn = conn
	return nil
}

// readBufferFor sizes the socket receive buffer for a credit window of w
// in-flight datagrams: the kernel accounts each frame at its skb truesize
// (~832 bytes for our ~155-byte frames), and a refill burst arrives while
// up to half the previous window is still queued, so size for 2x the
// window at a conservative 4KB per datagram, with a 1MB floor.
func readBufferFor(w int) int {
	n := 2 * w * 4096
	if n < 1<<20 {
		n = 1 << 20
	}
	return n
}

// jitter returns the deterministic backoff multiplier in [0.5, 1.5) for
// this receiver's n-th dial draw: the splitmix64 finalizer over (seed, n),
// the repo's standard determinism discipline. Per-receiver seeds decorrelate
// a fleet's backoff schedules — the whole point of jitter.
func jitter(seed int64, n uint64) float64 {
	z := uint64(seed) + n*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return 0.5 + float64(z>>11)/float64(1<<53)
}

// exchangeHello drives one hello/welcome handshake on the current socket,
// re-sending the hello with capped jittered exponential backoff until the
// welcome arrives or the deadline passes. A busy frame fails fast with
// ErrRefused — the broadcaster answered, it just will not have us.
func (r *Receiver) exchangeHello(deadline time.Time) (welcome, error) {
	hello := appendHello(nil, uint32(r.opts.Window))
	base := r.opts.Timeout / 8
	if base < 20*time.Millisecond {
		base = 20 * time.Millisecond
	}
	for attempt := 0; ; attempt++ {
		if _, err := r.conn.Write(hello); err != nil {
			return welcome{}, fmt.Errorf("wire: hello: %w", err)
		}
		// Exponentially widening, jittered listen window for this hello,
		// capped at Timeout and at the overall dial deadline.
		window := base << min(attempt, 6)
		if window > r.opts.Timeout {
			window = r.opts.Timeout
		}
		window = time.Duration(float64(window) * jitter(r.opts.Seed, r.dialDraw))
		r.dialDraw++
		wait := time.Now().Add(window)
		if wait.After(deadline) {
			wait = deadline
		}
		for {
			r.conn.SetReadDeadline(wait)
			n, err := r.conn.Read(r.readBuf)
			if err != nil {
				break // window over (or ICMP refusal): re-hello
			}
			ftype, body, err := packet.OpenEnvelope(r.readBuf[:n])
			if err != nil {
				r.corrupted++
				obsCorrupt.Inc()
				continue
			}
			switch ftype {
			case frameWelcome:
				w, err := parseWelcome(body)
				if err != nil {
					continue
				}
				return w, nil
			case frameBusy:
				remotes, max, err := parseBusy(body)
				if err != nil {
					continue
				}
				return welcome{}, fmt.Errorf("%w (%d/%d remotes) at %v", ErrRefused, remotes, max, r.raddr)
			default:
				// A data frame that overtook the welcome on a reordering
				// network; discarding it surfaces the position as an
				// ordinary wire gap once the stream is up.
				continue
			}
		}
		if !time.Now().Before(deadline) {
			return welcome{}, fmt.Errorf("wire: no broadcaster answering at %v: %w", r.raddr, ErrDead)
		}
	}
}

// Start returns the tune-in position: the first absolute position this
// subscription is guaranteed to cover.
func (r *Receiver) Start() int { return r.start }

// Len returns the cycle length in packets (broadcast.Feed). Wire
// deployments serve a static cycle, so the length learned at handshake
// holds for the subscription's lifetime; a redial that lands on a
// different length marks the receiver stale instead of changing it.
func (r *Receiver) Len() int { return r.cycleLen }

// Version returns the cycle version the broadcaster welcomed us onto.
func (r *Receiver) Version() uint32 { return r.version }

// Rate returns the bit rate queries over this subscription are costed at.
func (r *Receiver) Rate() int { return r.rate }

// Clock returns the next global tick (broadcast.Clocked): every tick so
// far has been served or slept over. On a single wire channel the global
// clock is the position stream itself, so tuner latency over a Receiver
// equals the plain-feed accounting packet for packet.
func (r *Receiver) Clock() int { return r.clock }

// TuneIn returns the tick the subscription began at (latency zero point).
func (r *Receiver) TuneIn() int { return r.start }

// Stale reports whether a redial found the air changed underneath the
// subscription (broadcast.Refreshable): the cycle geometry of the
// restarted broadcaster no longer matches what this receiver was built on,
// so it must not be re-entered — the session re-attaches a fresh one.
func (r *Receiver) Stale() bool { return r.stale }

// Corrupted returns how many received datagrams failed the frame
// integrity check (bad magic, truncation, CRC mismatch) and were dropped.
func (r *Receiver) Corrupted() int { return r.corrupted }

// Redials returns how many mid-stream reconnection attempts this receiver
// has made.
func (r *Receiver) Redials() int { return r.redials }

// WireLost returns how many positions this receiver served as lost
// because the wire skipped past them — dropped, corrupted or reordered
// datagrams, as experienced by the listener. A subset of what the tuner
// on top reports as Lost (which adds the injected-loss draw), so
// Lost - WireLost isolates injected simulator loss, mirroring the
// Missed/Lost split of the in-process station.
func (r *Receiver) WireLost() int { return r.wireLost }

// Prefetch declares an upcoming contiguous listen (broadcast.Prefetcher):
// the receiver grants the broadcaster credit for the whole span up front,
// so a long sequential read never stalls on mid-span credit refresh.
func (r *Receiver) Prefetch(abs, n int) {
	if r.closed {
		return
	}
	if lim := abs + n + r.opts.Window/2; lim > r.limit {
		r.sendWant(abs, lim)
	}
}

// At blocks until the wire has moved past absolute position abs and
// returns its packet (broadcast.Feed). Frames below abs were slept over
// and are discarded; a frame beyond abs means the wire lost abs, which is
// served as a corrupted reception with the correct kind. If the
// broadcaster says bye or falls silent past the retry budget, the receiver
// re-dials up to Redial times (fresh socket, fresh handshake, stream
// re-anchored); past that the feed aborts the query via
// broadcast.AbortFeed with ErrDead — a dead wire, unlike a stopped
// in-process station, has no cycle to degrade to.
func (r *Receiver) At(abs int) (packet.Packet, bool) {
	if r.closed {
		broadcast.AbortFeed(fmt.Errorf("wire: receiver used after Close"))
	}
	// Extend credit before any blocking read: the broadcaster streams only
	// what we have asked for, and asking early (half a window before the
	// bound) keeps the stream ahead of the reads.
	if abs+r.opts.Window/2 >= r.limit {
		r.sendWant(abs, abs+r.opts.Window)
	}
	if r.hasPending {
		switch {
		case r.pendingPos == abs:
			r.hasPending = false
			return r.serve(abs, r.pending)
		case r.pendingPos > abs:
			return r.gap(abs)
		default:
			r.hasPending = false
		}
	}
	timeouts := 0
	for {
		r.conn.SetReadDeadline(time.Now().Add(r.opts.Timeout))
		n, err := r.conn.Read(r.readBuf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				timeouts++
				if timeouts < r.opts.Retries {
					// The want (or the whole stream since it) may have been
					// lost; re-assert the credit and listen again.
					r.sendWant(abs, abs+r.opts.Window)
					continue
				}
			}
			r.redial(abs, fmt.Errorf("wire: broadcast from %v went silent at position %d: %w",
				r.raddr, abs, err))
			timeouts = 0
			continue
		}
		obsRecv.Inc()
		ftype, _, err := packet.OpenEnvelope(r.readBuf[:n])
		if err != nil {
			r.corrupted++
			obsCorrupt.Inc()
			continue
		}
		switch ftype {
		case packet.FrameData:
		case frameWelcome:
			continue // duplicate handshake reply
		case frameBye:
			r.redial(abs, fmt.Errorf("wire: broadcaster %v closed the stream at position %d",
				r.raddr, abs))
			timeouts = 0
			continue
		default:
			continue
		}
		f, err := packet.DecodeFrame(r.readBuf[:n])
		if err != nil {
			r.corrupted++
			obsCorrupt.Inc()
			continue
		}
		timeouts = 0
		r.unproductive = 0 // real data: the stream is alive again
		switch pos := int(f.Pos) - r.offset; {
		case pos < abs:
			// Slept over, or a duplicate; the radio was off for it.
		case pos == abs:
			return r.serve(abs, clonePacket(f.Pkt))
		default:
			r.pending, r.pendingPos, r.hasPending = clonePacket(f.Pkt), pos, true
			return r.gap(abs)
		}
	}
}

// abandon gives up on the current socket: a best-effort bye first, so the
// broadcaster releases whatever remote this socket had (a zombie remote
// parks its pump and, on a virtual clock, wedges the whole station until
// the janitor reaps it), then the close.
func (r *Receiver) abandon() {
	r.sendBuf = appendBye(r.sendBuf[:0])
	r.conn.Write(r.sendBuf)
	r.conn.Close()
}

// redial tears the dead socket down and reconnects, up to opts.Redial
// attempts; cause is what killed the stream. On success the subscription
// is re-anchored at client position abs and At's read loop resumes; on
// exhaustion (or a changed broadcast) the feed aborts, so redial only
// returns after a successful reconnect.
//
// The budget is charged per stretch of silence, not per call: redials since
// the last received data frame accumulate in r.unproductive (reset by At on
// real data), so a broadcaster that answers handshakes but never streams —
// a wedged station behind a live socket — cannot string a receiver along
// with an endless welcome-timeout-welcome loop.
func (r *Receiver) redial(abs int, cause error) {
	r.abandon()
	if r.opts.Redial <= 0 {
		obsDead.Inc()
		broadcast.AbortFeed(fmt.Errorf("%w: %v", ErrDead, cause))
	}
	if r.unproductive >= r.opts.Redial {
		obsDead.Inc()
		broadcast.AbortFeed(fmt.Errorf("%w: %d redials produced no data: %v",
			ErrDead, r.unproductive, cause))
	}
	base := r.opts.Timeout / 8
	if base < 20*time.Millisecond {
		base = 20 * time.Millisecond
	}
	for attempt := 0; attempt < r.opts.Redial; attempt++ {
		r.redials++
		r.unproductive++
		obsRedials.Inc()
		if attempt > 0 {
			// The broadcaster just refused to answer a whole DialTimeout of
			// hellos; pause (jittered, widening) before the next storm.
			pause := time.Duration(float64(base<<min(attempt, 6)) * jitter(r.opts.Seed, r.dialDraw))
			r.dialDraw++
			time.Sleep(pause)
		}
		if err := r.connect(); err != nil {
			continue
		}
		w, err := r.exchangeHello(time.Now().Add(r.opts.DialTimeout))
		if err != nil {
			r.abandon()
			if errors.Is(err, ErrRefused) {
				// The broadcaster is back but shedding load; a shed client
				// must not hammer it with more redials.
				broadcast.AbortFeed(fmt.Errorf("wire: redial refused: %w", err))
			}
			continue
		}
		if int(w.CycleLen) != r.cycleLen || w.Version != r.version {
			// The air changed underneath us: whatever partial answer the
			// client holds was built on a cycle that no longer exists.
			r.stale = true
			obsRestarts.Inc()
			broadcast.AbortFeed(fmt.Errorf("%w: cycle %d v%d is now %d v%d",
				ErrRestarted, r.cycleLen, r.version, w.CycleLen, w.Version))
		}
		// Re-anchor: the new subscription covers wire positions >= w.Start.
		// Advance the offset by whole cycles until client position abs maps
		// at or past it — same cycle slots, so the client's reception plan
		// and partial answer stay valid; the skipped air is just more
		// latency, which the wall clock already charged.
		if need := int(w.Start) - (abs + r.offset); need > 0 {
			r.offset += (need + r.cycleLen - 1) / r.cycleLen * r.cycleLen
		}
		r.hasPending = false
		r.limit = abs
		r.sendWant(abs, abs+r.opts.Window)
		return
	}
	obsDead.Inc()
	broadcast.AbortFeed(fmt.Errorf("%w after %d redials: %v", ErrDead, r.opts.Redial, cause))
}

// serve returns the received packet at abs, applying the injected-loss
// draw exactly as the simulator does (the kind survives, the payload does
// not). The draw runs on client coordinates, so a receiver that redialed
// mid-query keeps the same deterministic loss pattern it started with.
func (r *Receiver) serve(abs int, p packet.Packet) (packet.Packet, bool) {
	r.clock = abs + 1
	if broadcast.Lost(uint64(r.opts.Seed), abs, r.opts.Loss) {
		return packet.Packet{Kind: p.Kind}, false
	}
	return p, true
}

// gap serves a position the wire lost as a corrupted reception with the
// correct kind from the welcome schedule. (offset is a multiple of the
// cycle length, so client coordinates index the schedule directly.)
func (r *Receiver) gap(abs int) (packet.Packet, bool) {
	r.clock = abs + 1
	r.wireLost++
	obsGaps.Inc()
	return packet.Packet{Kind: r.kinds[abs%r.cycleLen]}, false
}

// clonePacket copies a decoded frame's packet out of the read buffer: the
// client may hold payload views across receptions (the in-process feeds
// hand out immutable cycle slices), so a served payload must not alias a
// buffer the next datagram overwrites.
func clonePacket(p packet.Packet) packet.Packet {
	p.Payload = append([]byte(nil), p.Payload...)
	return p
}

// sendWant grants the broadcaster credit to stream client positions
// [pos, limit), translated to wire coordinates on the way out.
func (r *Receiver) sendWant(pos, limit int) {
	r.sendBuf = appendWant(r.sendBuf[:0], uint64(pos+r.offset), uint64(limit+r.offset))
	if _, err := r.conn.Write(r.sendBuf); err == nil {
		if limit > r.limit {
			r.limit = limit
		}
	}
}

// Close tunes out: a best-effort bye releases the broadcaster's
// subscription immediately (the idle timeout would reclaim it anyway) and
// the socket closes. Safe to call more than once.
func (r *Receiver) Close() {
	if r.closed {
		return
	}
	r.closed = true
	r.sendBuf = appendBye(r.sendBuf[:0])
	r.conn.Write(r.sendBuf)
	r.conn.Close()
}
