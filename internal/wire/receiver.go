package wire

import (
	"fmt"
	"net"
	"time"

	"repro/internal/broadcast"
	"repro/internal/packet"
)

// ReceiverOptions tune one wire subscription. The zero value is a lossless
// (no injected loss) receiver with a 256-packet credit window and a 2s
// silence timeout.
type ReceiverOptions struct {
	// Loss is the injected deterministic packet-loss rate in [0,1), drawn
	// with broadcast.Lost over (Seed, position) at serve time — the same
	// draw as the simulator, on top of whatever the real wire loses.
	Loss float64
	// Seed derives the injected loss pattern.
	Seed int64
	// Window is the credit window in packets: how far ahead of the current
	// read position the broadcaster may stream. Default 256 — deep enough
	// that an attentive receiver never stalls the stream, shallow enough
	// that the in-flight bytes sit comfortably in a default socket buffer.
	Window int
	// Timeout bounds one silent wait for the next datagram; on expiry the
	// receiver re-sends its credit (the previous want datagram may itself
	// have been lost) and, after Retries consecutive expiries, declares the
	// wire dead. Default 2s.
	Timeout time.Duration
	// Retries is the number of consecutive timeouts tolerated before the
	// feed aborts the query via broadcast.AbortFeed. Default 4.
	Retries int
}

// Receiver is a remote subscription to a wire broadcast: a broadcast.Feed
// (and Clocked and Prefetcher) over a connected UDP socket, so the
// ordinary Tuner — and every scheme client above it — runs on a remote
// broadcast exactly as on an in-process one. The receiver owns its socket
// reads: like station.Sub, it is single-goroutine on the client side,
// while the broadcaster side is concurrency-safe.
//
// Loss accounting mirrors the in-process feeds: a position the wire
// skipped past (datagram dropped by the network, rejected by CRC, or
// overtaken by reordering) is served as a corrupted reception carrying the
// correct packet kind from the welcome's kind schedule, counted in
// WireLost and — through the tuner that listened for it — in Tuner.Lost.
// Injected loss is applied at serve time on intact positions, keeping the
// received frame's kind, so a loopback receiver is bit-identical to an
// offline replay with equal (start, loss, seed).
type Receiver struct {
	conn *net.UDPConn
	opts ReceiverOptions

	start    int
	cycleLen int
	version  uint32
	rate     int
	kinds    []packet.Kind

	limit int // exclusive credit bound granted so far
	clock int // next global tick: everything below is served or slept over

	pending    packet.Packet
	pendingPos int
	hasPending bool

	corrupted int
	wireLost  int

	readBuf []byte
	sendBuf []byte
	closed  bool
}

// Dial subscribes to the wire broadcaster at addr (host:port) and performs
// the hello/welcome handshake. The returned receiver tunes in at Start(),
// the absolute position of the first packet its subscription covers; wrap
// it in a tuner with broadcast.NewFeedTuner(rx, rx.Start()) and Close it
// when the query is done.
func Dial(addr string, opts ReceiverOptions) (*Receiver, error) {
	if opts.Loss < 0 || opts.Loss >= 1 {
		return nil, fmt.Errorf("wire: loss rate %v outside [0,1)", opts.Loss)
	}
	if opts.Window <= 0 {
		opts.Window = 256
	}
	if opts.Window < 16 {
		opts.Window = 16
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 2 * time.Second
	}
	if opts.Retries <= 0 {
		opts.Retries = 4
	}
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	// Ask the kernel for room to hold a full credit window of datagrams.
	// The default socket buffer fits the default window with no headroom
	// (each ~155-byte frame is charged its skb truesize, ~832 bytes, and
	// 256 of those exactly exhaust a 212992-byte rcvbuf), so a burst after
	// a credit refill would tip it over and drop a datagram. Best effort:
	// the kernel clamps the request to rmem_max, and any remaining shortfall
	// surfaces honestly as wire loss, never as a wrong answer.
	conn.SetReadBuffer(readBufferFor(opts.Window))
	r := &Receiver{
		conn:    conn,
		opts:    opts,
		readBuf: make([]byte, 2048),
	}
	if err := r.handshake(); err != nil {
		conn.Close()
		return nil, err
	}
	return r, nil
}

// readBufferFor sizes the socket receive buffer for a credit window of w
// in-flight datagrams: the kernel accounts each frame at its skb truesize
// (~832 bytes for our ~155-byte frames), and a refill burst arrives while
// up to half the previous window is still queued, so size for 2x the
// window at a conservative 4KB per datagram, with a 1MB floor.
func readBufferFor(w int) int {
	n := 2 * w * 4096
	if n < 1<<20 {
		n = 1 << 20
	}
	return n
}

// handshake sends hello and waits for the welcome, retrying on silence.
func (r *Receiver) handshake() error {
	hello := appendHello(nil, uint32(r.opts.Window))
	for attempt := 0; attempt < r.opts.Retries; attempt++ {
		if _, err := r.conn.Write(hello); err != nil {
			return fmt.Errorf("wire: hello: %w", err)
		}
		deadline := time.Now().Add(r.opts.Timeout)
		for {
			r.conn.SetReadDeadline(deadline)
			n, err := r.conn.Read(r.readBuf)
			if err != nil {
				break // timeout (or ICMP refusal): re-hello
			}
			ftype, body, err := packet.OpenEnvelope(r.readBuf[:n])
			if err != nil {
				r.corrupted++
				obsCorrupt.Inc()
				continue
			}
			if ftype != frameWelcome {
				// A data frame that overtook the welcome on a reordering
				// network; discarding it surfaces the position as an
				// ordinary wire gap once the stream is up.
				continue
			}
			w, err := parseWelcome(body)
			if err != nil {
				continue
			}
			r.start = int(w.Start)
			r.cycleLen = int(w.CycleLen)
			r.version = w.Version
			r.rate = int(w.Rate)
			r.kinds = w.Kinds
			r.clock = r.start
			r.limit = r.start + r.opts.Window // granted in the hello
			return nil
		}
	}
	return fmt.Errorf("wire: no broadcaster answering at %v", r.conn.RemoteAddr())
}

// Start returns the tune-in position: the first absolute position this
// subscription is guaranteed to cover.
func (r *Receiver) Start() int { return r.start }

// Len returns the cycle length in packets (broadcast.Feed). Wire
// deployments serve a static cycle, so the length learned at handshake
// holds for the subscription's lifetime.
func (r *Receiver) Len() int { return r.cycleLen }

// Version returns the cycle version the broadcaster welcomed us onto.
func (r *Receiver) Version() uint32 { return r.version }

// Rate returns the bit rate queries over this subscription are costed at.
func (r *Receiver) Rate() int { return r.rate }

// Clock returns the next global tick (broadcast.Clocked): every tick so
// far has been served or slept over. On a single wire channel the global
// clock is the position stream itself, so tuner latency over a Receiver
// equals the plain-feed accounting packet for packet.
func (r *Receiver) Clock() int { return r.clock }

// TuneIn returns the tick the subscription began at (latency zero point).
func (r *Receiver) TuneIn() int { return r.start }

// Corrupted returns how many received datagrams failed the frame
// integrity check (bad magic, truncation, CRC mismatch) and were dropped.
func (r *Receiver) Corrupted() int { return r.corrupted }

// WireLost returns how many positions this receiver served as lost
// because the wire skipped past them — dropped, corrupted or reordered
// datagrams, as experienced by the listener. A subset of what the tuner
// on top reports as Lost (which adds the injected-loss draw), so
// Lost - WireLost isolates injected simulator loss, mirroring the
// Missed/Lost split of the in-process station.
func (r *Receiver) WireLost() int { return r.wireLost }

// Prefetch declares an upcoming contiguous listen (broadcast.Prefetcher):
// the receiver grants the broadcaster credit for the whole span up front,
// so a long sequential read never stalls on mid-span credit refresh.
func (r *Receiver) Prefetch(abs, n int) {
	if r.closed {
		return
	}
	if lim := abs + n + r.opts.Window/2; lim > r.limit {
		r.sendWant(abs, lim)
	}
}

// At blocks until the wire has moved past absolute position abs and
// returns its packet (broadcast.Feed). Frames below abs were slept over
// and are discarded; a frame beyond abs means the wire lost abs, which is
// served as a corrupted reception with the correct kind. If the
// broadcaster says bye or falls silent past the retry budget the feed
// aborts the query via broadcast.AbortFeed — a dead wire, unlike a
// stopped in-process station, has no cycle to degrade to.
func (r *Receiver) At(abs int) (packet.Packet, bool) {
	if r.closed {
		broadcast.AbortFeed(fmt.Errorf("wire: receiver used after Close"))
	}
	// Extend credit before any blocking read: the broadcaster streams only
	// what we have asked for, and asking early (half a window before the
	// bound) keeps the stream ahead of the reads.
	if abs+r.opts.Window/2 >= r.limit {
		r.sendWant(abs, abs+r.opts.Window)
	}
	if r.hasPending {
		switch {
		case r.pendingPos == abs:
			r.hasPending = false
			return r.serve(abs, r.pending)
		case r.pendingPos > abs:
			return r.gap(abs)
		default:
			r.hasPending = false
		}
	}
	timeouts := 0
	for {
		r.conn.SetReadDeadline(time.Now().Add(r.opts.Timeout))
		n, err := r.conn.Read(r.readBuf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				timeouts++
				if timeouts < r.opts.Retries {
					// The want (or the whole stream since it) may have been
					// lost; re-assert the credit and listen again.
					r.sendWant(abs, abs+r.opts.Window)
					continue
				}
			}
			broadcast.AbortFeed(fmt.Errorf("wire: broadcast from %v went silent at position %d: %w",
				r.conn.RemoteAddr(), abs, err))
		}
		obsRecv.Inc()
		ftype, _, err := packet.OpenEnvelope(r.readBuf[:n])
		if err != nil {
			r.corrupted++
			obsCorrupt.Inc()
			continue
		}
		switch ftype {
		case packet.FrameData:
		case frameWelcome:
			continue // duplicate handshake reply
		case frameBye:
			broadcast.AbortFeed(fmt.Errorf("wire: broadcaster %v closed the stream at position %d",
				r.conn.RemoteAddr(), abs))
		default:
			continue
		}
		f, err := packet.DecodeFrame(r.readBuf[:n])
		if err != nil {
			r.corrupted++
			obsCorrupt.Inc()
			continue
		}
		timeouts = 0
		switch pos := int(f.Pos); {
		case pos < abs:
			// Slept over, or a duplicate; the radio was off for it.
		case pos == abs:
			return r.serve(abs, clonePacket(f.Pkt))
		default:
			r.pending, r.pendingPos, r.hasPending = clonePacket(f.Pkt), pos, true
			return r.gap(abs)
		}
	}
}

// serve returns the received packet at abs, applying the injected-loss
// draw exactly as the simulator does (the kind survives, the payload does
// not).
func (r *Receiver) serve(abs int, p packet.Packet) (packet.Packet, bool) {
	r.clock = abs + 1
	if broadcast.Lost(uint64(r.opts.Seed), abs, r.opts.Loss) {
		return packet.Packet{Kind: p.Kind}, false
	}
	return p, true
}

// gap serves a position the wire lost as a corrupted reception with the
// correct kind from the welcome schedule.
func (r *Receiver) gap(abs int) (packet.Packet, bool) {
	r.clock = abs + 1
	r.wireLost++
	obsGaps.Inc()
	return packet.Packet{Kind: r.kinds[abs%r.cycleLen]}, false
}

// clonePacket copies a decoded frame's packet out of the read buffer: the
// client may hold payload views across receptions (the in-process feeds
// hand out immutable cycle slices), so a served payload must not alias a
// buffer the next datagram overwrites.
func clonePacket(p packet.Packet) packet.Packet {
	p.Payload = append([]byte(nil), p.Payload...)
	return p
}

// sendWant grants the broadcaster credit to stream [pos, limit).
func (r *Receiver) sendWant(pos, limit int) {
	r.sendBuf = appendWant(r.sendBuf[:0], uint64(pos), uint64(limit))
	if _, err := r.conn.Write(r.sendBuf); err == nil {
		if limit > r.limit {
			r.limit = limit
		}
	}
}

// Close tunes out: a best-effort bye releases the broadcaster's
// subscription immediately (the idle timeout would reclaim it anyway) and
// the socket closes. Safe to call more than once.
func (r *Receiver) Close() {
	if r.closed {
		return
	}
	r.closed = true
	r.sendBuf = appendBye(r.sendBuf[:0])
	r.conn.Write(r.sendBuf)
	r.conn.Close()
}
