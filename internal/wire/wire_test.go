package wire

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/broadcast"
	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/packet"
	"repro/internal/scheme"
	"repro/internal/station"
)

// startStation puts srv's cycle on a virtual-clock station.
func startStation(t *testing.T, srv scheme.Server) *station.Station {
	t.Helper()
	st, err := station.New(srv.Cycle(), station.Config{})
	if err != nil {
		t.Fatalf("station.New: %v", err)
	}
	if err := st.Start(context.Background()); err != nil {
		t.Fatalf("station.Start: %v", err)
	}
	t.Cleanup(st.Stop)
	return st
}

// serve wires a loopback broadcaster in front of the station.
func serve(t *testing.T, st *station.Station, opts BroadcasterOptions) *Broadcaster {
	t.Helper()
	b, err := NewBroadcaster("127.0.0.1:0", st, opts)
	if err != nil {
		t.Fatalf("NewBroadcaster: %v", err)
	}
	t.Cleanup(b.Close)
	return b
}

// testServers builds the EB and NR servers of one conformance network.
func testServers(t *testing.T, g *graph.Graph) []scheme.Server {
	t.Helper()
	eb, err := core.NewEB(g, core.Options{Regions: 8, Segments: true, SquareCells: true})
	if err != nil {
		t.Fatalf("NewEB: %v", err)
	}
	nr, err := core.NewNR(g, core.Options{Regions: 8, Segments: true, SquareCells: true})
	if err != nil {
		t.Fatalf("NewNR: %v", err)
	}
	return []scheme.Server{eb, nr}
}

// TestLoopbackMatchesOffline pins the transport's key invariant: a query
// answered over a UDP loopback receiver is bit-identical — distance,
// tuning, latency, lost-packet accounting — to an offline replay from the
// same tune-in position with the same (loss, seed). With the live==offline
// equivalence the station suite already pins, this makes remote sessions
// equivalent to in-process live sessions, for EB and NR on two networks,
// at zero and at nonzero injected loss.
func TestLoopbackMatchesOffline(t *testing.T) {
	networks := []*graph.Graph{
		conformance.Network(t, 350, 500, 11),
		conformance.Network(t, 200, 320, 7),
	}
	for ni, g := range networks {
		for _, srv := range testServers(t, g) {
			for _, loss := range []float64{0, 0.08} {
				t.Run(fmt.Sprintf("net%d/%s/loss%v", ni, srv.Name(), loss), func(t *testing.T) {
					st := startStation(t, srv)
					b := serve(t, st, BroadcasterOptions{})
					client := srv.NewClient()
					offline := srv.NewClient()
					for i := 0; i < 8; i++ {
						s := graph.NodeID((i*17 + 3) % g.NumNodes())
						d := graph.NodeID((i*43 + 29) % g.NumNodes())
						if s == d {
							continue
						}
						q := scheme.QueryFor(g, s, d)
						seed := int64(5000 + 100*ni + i)

						rx, err := Dial(b.Addr().String(), ReceiverOptions{Loss: loss, Seed: seed})
						if err != nil {
							t.Fatalf("Dial: %v", err)
						}
						wt := broadcast.NewFeedTuner(rx, rx.Start())
						res, err := client.Query(wt, q)
						start := rx.Start()
						wireLost, corrupted := rx.WireLost(), rx.Corrupted()
						rx.Close()
						if err != nil {
							t.Fatalf("%s wire query %d: %v", srv.Name(), i, err)
						}
						if wireLost != 0 || corrupted != 0 {
							t.Fatalf("%s wire query %d: loopback lost %d / corrupted %d datagrams",
								srv.Name(), i, wireLost, corrupted)
						}

						ch, err := broadcast.NewChannel(srv.Cycle(), loss, seed)
						if err != nil {
							t.Fatal(err)
						}
						ot := broadcast.NewTuner(ch, start)
						off, err := offline.Query(ot, q)
						if err != nil {
							t.Fatalf("%s offline query %d: %v", srv.Name(), i, err)
						}

						if res.Dist != off.Dist {
							t.Errorf("%s query %d: wire dist %v != offline %v", srv.Name(), i, res.Dist, off.Dist)
						}
						if res.Metrics.TuningPackets != off.Metrics.TuningPackets ||
							res.Metrics.LatencyPackets != off.Metrics.LatencyPackets {
							t.Errorf("%s query %d: wire tuning/latency %d/%d != offline %d/%d",
								srv.Name(), i,
								res.Metrics.TuningPackets, res.Metrics.LatencyPackets,
								off.Metrics.TuningPackets, off.Metrics.LatencyPackets)
						}
						if wt.Lost() != ot.Lost() {
							t.Errorf("%s query %d: wire lost %d != offline lost %d",
								srv.Name(), i, wt.Lost(), ot.Lost())
						}
					}
				})
			}
		}
	}
}

// TestCorruptionAccountedAsLost injects frame corruption broadcaster-side
// and checks the CRC layer's contract end to end: every corrupted datagram
// is rejected (never decoded into a wrong answer), the position surfaces
// to the tuner as a lost reception with the correct packet kind, and the
// client still answers correctly by recovering in a later cycle.
func TestCorruptionAccountedAsLost(t *testing.T) {
	g := conformance.Network(t, 250, 380, 13)
	srv := testServers(t, g)[1] // NR
	st := startStation(t, srv)
	corruptEvery := 7
	b := serve(t, st, BroadcasterOptions{
		Corrupt: func(pos uint64, frame []byte) []byte {
			if pos%uint64(corruptEvery) == 0 {
				frame[len(frame)/2] ^= 0x20 // fails the CRC, not just the header
			}
			return frame
		},
	})

	// Feed-level contract: every corrupted position is served lost with
	// the right kind, everything else arrives intact.
	rx, err := Dial(b.Addr().String(), ReceiverOptions{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	cyc := srv.Cycle()
	wantLost := 0
	for i := 0; i < 2*cyc.Len(); i++ {
		abs := rx.Start() + i
		p, ok := rx.At(abs)
		if abs%corruptEvery == 0 {
			wantLost++
			if ok {
				t.Fatalf("position %d: corrupted frame served as intact", abs)
			}
		} else if !ok {
			t.Fatalf("position %d: clean frame served as lost", abs)
		}
		if want := cyc.Packets[abs%cyc.Len()].Kind; p.Kind != want {
			t.Fatalf("position %d: kind %v, want %v", abs, p.Kind, want)
		}
	}
	if rx.WireLost() != wantLost {
		t.Fatalf("WireLost %d, want %d", rx.WireLost(), wantLost)
	}
	if rx.Corrupted() != wantLost {
		t.Fatalf("Corrupted %d, want %d (every rejected datagram counted)", rx.Corrupted(), wantLost)
	}
	rx.Close()

	// Client-level contract: queries over the corrupted wire still answer
	// with the lossless reference distance, charging the corruption to
	// tuning time and Tuner.Lost only.
	client := srv.NewClient()
	reference := srv.NewClient()
	refCh, err := broadcast.NewChannel(cyc, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	sawLost := false
	for i := 0; i < 5; i++ {
		q := scheme.QueryFor(g, graph.NodeID((i*31+5)%g.NumNodes()), graph.NodeID((i*57+11)%g.NumNodes()))
		rx, err := Dial(b.Addr().String(), ReceiverOptions{})
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		wt := broadcast.NewFeedTuner(rx, rx.Start())
		res, err := client.Query(wt, q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if wt.Lost() != rx.WireLost() {
			t.Fatalf("query %d: tuner lost %d != wire lost %d (no injected loss configured)",
				i, wt.Lost(), rx.WireLost())
		}
		sawLost = sawLost || wt.Lost() > 0
		rx.Close()
		ref, err := reference.Query(broadcast.NewTuner(refCh, 0), q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Dist != ref.Dist {
			t.Fatalf("query %d: dist %v over corrupted wire, want %v", i, res.Dist, ref.Dist)
		}
	}
	if !sawLost {
		t.Fatal("no query ever listened to a corrupted position; the injection test is vacuous")
	}
}

// TestDroppedDatagramsAreGaps drops (rather than corrupts) a slice of
// outgoing datagrams: the receiver must serve the holes as lost packets
// the moment the stream skips past them.
func TestDroppedDatagramsAreGaps(t *testing.T) {
	g := conformance.Network(t, 200, 300, 5)
	srv := testServers(t, g)[1]
	st := startStation(t, srv)
	b := serve(t, st, BroadcasterOptions{
		Corrupt: func(pos uint64, frame []byte) []byte {
			if pos%11 == 3 {
				return nil // dropped on the floor, like a congested router
			}
			return frame
		},
	})
	rx, err := Dial(b.Addr().String(), ReceiverOptions{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer rx.Close()
	lost := 0
	for i := 0; i < 300; i++ {
		abs := rx.Start() + i
		_, ok := rx.At(abs)
		if abs%11 == 3 {
			lost++
			if ok {
				t.Fatalf("position %d: dropped datagram served as intact", abs)
			}
		} else if !ok {
			t.Fatalf("position %d: delivered datagram served as lost", abs)
		}
	}
	if rx.WireLost() != lost {
		t.Fatalf("WireLost %d, want %d", rx.WireLost(), lost)
	}
	if rx.Corrupted() != 0 {
		t.Fatalf("Corrupted %d on drops, want 0", rx.Corrupted())
	}
}

// TestSleepSkipsAhead checks the credit path of a sleeping radio: a jump
// far beyond the current window (several cycles ahead) must neither stall
// nor surface phantom losses — the broadcaster skips with the receiver.
func TestSleepSkipsAhead(t *testing.T) {
	g := conformance.Network(t, 200, 300, 9)
	srv := testServers(t, g)[0]
	st := startStation(t, srv)
	b := serve(t, st, BroadcasterOptions{})
	rx, err := Dial(b.Addr().String(), ReceiverOptions{Window: 64})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer rx.Close()
	cyc := srv.Cycle()
	abs := rx.Start()
	for hop := 0; hop < 6; hop++ {
		p, ok := rx.At(abs)
		if !ok {
			t.Fatalf("position %d served as lost on a clean loopback", abs)
		}
		if want := cyc.Packets[abs%cyc.Len()].Kind; p.Kind != want {
			t.Fatalf("position %d: kind %v, want %v", abs, p.Kind, want)
		}
		abs += 3*cyc.Len() + 17 // sleep multiple cycles ahead
	}
	if rx.WireLost() != 0 {
		t.Fatalf("WireLost %d after sleeps, want 0", rx.WireLost())
	}
}

// TestDeadWireAborts checks both failure surfaces of a vanished
// broadcaster: an explicit bye (broadcaster closed) and plain silence
// (retry budget exhausted) abort the listen loop through the same typed
// panic the tuner's bound-context cancellation uses, so query entry
// points recover it into an ordinary error.
func TestDeadWireAborts(t *testing.T) {
	g := conformance.Network(t, 200, 300, 3)
	srv := testServers(t, g)[1]
	st := startStation(t, srv)
	b := serve(t, st, BroadcasterOptions{})
	rx, err := Dial(b.Addr().String(), ReceiverOptions{Timeout: 200 * time.Millisecond, Retries: 2})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer rx.Close()
	if _, ok := rx.At(rx.Start()); !ok {
		t.Fatal("first position lost on a clean loopback")
	}
	b.Close()

	read := func() (err error) {
		defer broadcast.RecoverCancel(&err)
		for i := 1; i < 1<<20; i++ {
			rx.At(rx.Start() + i)
		}
		return nil
	}
	if err := read(); err == nil {
		t.Fatal("receiver kept serving after the broadcaster closed")
	} else if !errors.Is(err, ErrDead) {
		t.Fatalf("dead wire surfaced as %v, want ErrDead", err)
	}
}

// TestDialNobodyListening checks that a dial against a dead port fails
// with an error instead of hanging or panicking.
func TestDialNobodyListening(t *testing.T) {
	_, err := Dial("127.0.0.1:9", ReceiverOptions{Timeout: 150 * time.Millisecond, Retries: 2})
	if err == nil {
		t.Fatal("Dial against a dead port succeeded")
	}
}

// TestIdleRemoteExpires checks the janitor: a receiver that vanishes
// without a bye is reclaimed after the idle timeout, so it cannot pin its
// subscription forever.
func TestIdleRemoteExpires(t *testing.T) {
	g := conformance.Network(t, 200, 300, 17)
	srv := testServers(t, g)[1]
	st := startStation(t, srv)
	b := serve(t, st, BroadcasterOptions{IdleTimeout: 150 * time.Millisecond})
	rx, err := Dial(b.Addr().String(), ReceiverOptions{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if _, ok := rx.At(rx.Start()); !ok {
		t.Fatal("first position lost on a clean loopback")
	}
	if got := b.Remotes(); got != 1 {
		t.Fatalf("Remotes() = %d after handshake, want 1", got)
	}
	// Vanish without a bye: close the socket only.
	rx.conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for b.Remotes() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle remote still subscribed after %v", time.Since(deadline.Add(-5*time.Second)))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestWelcomeRoundTrip pins the control-frame codec, including the RLE
// kind schedule, and its rejection of malformed bodies.
func TestWelcomeRoundTrip(t *testing.T) {
	kinds := make([]packet.Kind, 0, 10)
	for _, run := range []struct {
		k packet.Kind
		n int
	}{{packet.KindIndex, 2}, {packet.KindData, 7}, {packet.KindIndex, 1}} {
		for i := 0; i < run.n; i++ {
			kinds = append(kinds, run.k)
		}
	}
	in := welcome{Start: 987654, CycleLen: 10, Version: 3, Rate: 384000, Kinds: kinds}
	frame, err := appendWelcome(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	ftype, body, err := packet.OpenEnvelope(frame)
	if err != nil || ftype != frameWelcome {
		t.Fatalf("envelope: type %d err %v", ftype, err)
	}
	out, err := parseWelcome(body)
	if err != nil {
		t.Fatal(err)
	}
	if out.Start != in.Start || out.CycleLen != in.CycleLen || out.Version != in.Version || out.Rate != in.Rate {
		t.Fatalf("welcome header round-trip: %+v", out)
	}
	for i := range kinds {
		if out.Kinds[i] != kinds[i] {
			t.Fatalf("kind schedule position %d: %v, want %v", i, out.Kinds[i], kinds[i])
		}
	}
	// Malformed bodies must be rejected, never panic or over-allocate.
	for cut := 0; cut < len(body); cut++ {
		if _, err := parseWelcome(body[:cut]); err == nil && cut < len(body) {
			t.Fatalf("truncated welcome body of %d bytes parsed", cut)
		}
	}
	bad := append([]byte(nil), body...)
	bad[8] = 0xff // cycleLen no longer matches the schedule
	bad[9] = 0xff
	if _, err := parseWelcome(bad); err == nil {
		t.Fatal("welcome with mismatched cycle length parsed")
	}
}
