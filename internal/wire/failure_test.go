package wire

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/broadcast"
	"repro/internal/conformance"
	"repro/internal/packet"
)

// rawClient is a bare UDP socket speaking the control protocol by hand —
// for tests that need to send frames a well-behaved Receiver never would
// (duplicate hellos, stale wants).
type rawClient struct {
	t    *testing.T
	conn *net.UDPConn
	buf  []byte
}

func rawDial(t *testing.T, b *Broadcaster) *rawClient {
	t.Helper()
	raddr, err := net.ResolveUDPAddr("udp", b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawClient{t: t, conn: conn, buf: make([]byte, 2048)}
}

func (c *rawClient) send(frame []byte) {
	c.t.Helper()
	if _, err := c.conn.Write(frame); err != nil {
		c.t.Fatalf("send: %v", err)
	}
}

// read returns the next frame's type, or false on timeout.
func (c *rawClient) read(timeout time.Duration) (uint8, []byte, bool) {
	c.t.Helper()
	c.conn.SetReadDeadline(time.Now().Add(timeout))
	n, err := c.conn.Read(c.buf)
	if err != nil {
		return 0, nil, false
	}
	ftype, body, err := packet.OpenEnvelope(c.buf[:n])
	if err != nil {
		c.t.Fatalf("bad envelope from broadcaster: %v", err)
	}
	return ftype, body, true
}

// waitRemotes polls the broadcaster's remote count.
func waitRemotes(t *testing.T, b *Broadcaster, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for b.Remotes() != want {
		if time.Now().After(deadline) {
			t.Fatalf("Remotes() = %d, want %d (timed out)", b.Remotes(), want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestByeReleasesRemote: an explicit bye releases the subscription
// immediately — no waiting for the janitor's idle horizon.
func TestByeReleasesRemote(t *testing.T) {
	g := conformance.Network(t, 200, 300, 5)
	srv := testServers(t, g)[1]
	st := startStation(t, srv)
	b := serve(t, st, BroadcasterOptions{}) // default 30s idle: only a bye can be this fast
	rx, err := Dial(b.Addr().String(), ReceiverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rx.At(rx.Start()); !ok {
		t.Fatal("first position lost on a clean loopback")
	}
	waitRemotes(t, b, 1)
	rx.Close() // sends the bye
	waitRemotes(t, b, 0)
}

// TestDuplicateHelloReWelcomes: a re-sent hello (the welcome was lost, or
// the network duplicated the datagram) re-welcomes the existing remote
// instead of double-subscribing it.
func TestDuplicateHelloReWelcomes(t *testing.T) {
	g := conformance.Network(t, 200, 300, 7)
	srv := testServers(t, g)[1]
	st := startStation(t, srv)
	b := serve(t, st, BroadcasterOptions{})

	c := rawDial(t, b)
	hello := appendHello(nil, 64)
	for i := 0; i < 3; i++ {
		c.send(hello)
		// The first hello's credit window starts streaming immediately, so
		// data frames may arrive ahead of a re-welcome; skip them.
		welcomed := false
		for !welcomed {
			ftype, body, ok := c.read(2 * time.Second)
			if !ok {
				t.Fatalf("hello %d: no welcome", i)
			}
			if ftype != frameWelcome {
				continue
			}
			if _, err := parseWelcome(body); err != nil {
				t.Fatalf("hello %d: bad welcome: %v", i, err)
			}
			welcomed = true
		}
		if got := b.Remotes(); got != 1 {
			t.Fatalf("after hello %d: Remotes() = %d, want 1 (double subscription)", i, got)
		}
	}
	c.send(appendBye(nil))
	waitRemotes(t, b, 0)
}

// TestStaleWantIgnored: credit positions only move forward, so a
// duplicated or reordered want frame arriving late (with positions the
// stream already passed) must not rewind the pump.
func TestStaleWantIgnored(t *testing.T) {
	r := &remote{credit: make(chan struct{}, 1)}
	r.advance(100, 200)
	// A stale duplicate from an earlier window.
	r.advance(40, 80)
	if w := r.want.Load(); w != 100 {
		t.Fatalf("stale want rewound position to %d, want 100", w)
	}
	if l := r.limit.Load(); l != 200 {
		t.Fatalf("stale want rewound limit to %d, want 200", l)
	}
	// A genuine advance still lands.
	r.advance(150, 300)
	if w, l := r.want.Load(), r.limit.Load(); w != 150 || l != 300 {
		t.Fatalf("fresh want ignored: pos %d limit %d, want 150/300", w, l)
	}
}

// TestStaleWantOnTheWire drives the same property end to end: after the
// receiver has read past a window, replaying its old want datagram must
// not make the broadcaster re-stream old positions.
func TestStaleWantOnTheWire(t *testing.T) {
	g := conformance.Network(t, 200, 300, 9)
	srv := testServers(t, g)[1]
	st := startStation(t, srv)
	b := serve(t, st, BroadcasterOptions{})

	c := rawDial(t, b)
	c.send(appendHello(nil, 16))
	ftype, body, ok := c.read(2 * time.Second)
	if !ok || ftype != frameWelcome {
		t.Fatalf("no welcome (type %#x ok %v)", ftype, ok)
	}
	w, err := parseWelcome(body)
	if err != nil {
		t.Fatal(err)
	}
	start := w.Start

	// Drain the hello's initial window, then replay a want for it.
	drained := 0
	for {
		ftype, _, ok := c.read(500 * time.Millisecond)
		if !ok {
			break
		}
		if ftype == packet.FrameData {
			drained++
		}
	}
	if drained == 0 {
		t.Fatal("initial credit window streamed nothing")
	}
	c.send(appendWant(nil, start, start+4)) // stale: all below the stream position
	if ftype, _, ok := c.read(400 * time.Millisecond); ok && ftype == packet.FrameData {
		t.Fatal("stale want re-streamed already-sent positions")
	}
	c.send(appendBye(nil))
}

// TestAdmissionRefusal: a broadcaster at MaxRemotes answers hellos with a
// typed busy frame; the dialing receiver fails fast with ErrRefused
// instead of burning its dial deadline, and a released slot admits again.
func TestAdmissionRefusal(t *testing.T) {
	g := conformance.Network(t, 200, 300, 11)
	srv := testServers(t, g)[1]
	st := startStation(t, srv)
	b := serve(t, st, BroadcasterOptions{MaxRemotes: 1})

	rx1, err := Dial(b.Addr().String(), ReceiverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rx1.At(rx1.Start()); !ok {
		t.Fatal("first position lost on a clean loopback")
	}

	began := time.Now()
	_, err = Dial(b.Addr().String(), ReceiverOptions{Timeout: 2 * time.Second, Retries: 4})
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("dial against a full broadcaster: err %v, want ErrRefused", err)
	}
	// Fail fast: the busy frame arrives on the first hello, nowhere near
	// the 8s dial budget.
	if waited := time.Since(began); waited > 2*time.Second {
		t.Errorf("refused dial took %v — burned the deadline instead of failing fast", waited)
	}

	rx1.Close()
	waitRemotes(t, b, 0)
	rx2, err := Dial(b.Addr().String(), ReceiverOptions{})
	if err != nil {
		t.Fatalf("dial after the slot freed: %v", err)
	}
	rx2.Close()
}

// TestBusyFrameRoundTrip pins the busy-frame codec and its rejection of
// malformed bodies.
func TestBusyFrameRoundTrip(t *testing.T) {
	frame := appendBusy(nil, 7, 16)
	ftype, body, err := packet.OpenEnvelope(frame)
	if err != nil || ftype != frameBusy {
		t.Fatalf("envelope: type %#x err %v", ftype, err)
	}
	remotes, max, err := parseBusy(body)
	if err != nil || remotes != 7 || max != 16 {
		t.Fatalf("parseBusy: %d/%d err %v, want 7/16", remotes, max, err)
	}
	for cut := 0; cut < len(body); cut++ {
		if _, _, err := parseBusy(body[:cut]); err == nil {
			t.Fatalf("truncated busy body (%d bytes) accepted", cut)
		}
	}
}

// TestRedialResumesAfterRestart is the transport half of the chaos drill:
// the broadcaster dies mid-stream and comes back on the same port with the
// same cycle; a receiver with redial budget re-anchors and keeps serving
// the right packet kinds at the same client positions — the partial answer
// above it stays valid.
func TestRedialResumesAfterRestart(t *testing.T) {
	g := conformance.Network(t, 200, 300, 13)
	srv := testServers(t, g)[1]
	st := startStation(t, srv)
	b, err := NewBroadcaster("127.0.0.1:0", st, BroadcasterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	addr := b.Addr().String()

	rx, err := Dial(addr, ReceiverOptions{
		Timeout: 150 * time.Millisecond, Retries: 2,
		Redial: 4, DialTimeout: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	cyc := srv.Cycle()

	read := func(n int) (err error) {
		defer broadcast.RecoverCancel(&err)
		for i := 0; i < n; i++ {
			abs := rx.Start() + i
			p, _ := rx.At(abs)
			if want := cyc.Packets[abs%cyc.Len()].Kind; p.Kind != want {
				t.Fatalf("position %d: kind %v, want %v", abs, p.Kind, want)
			}
		}
		return nil
	}
	if err := read(20); err != nil {
		t.Fatalf("before restart: %v", err)
	}

	b.Close()
	restarted := make(chan *Broadcaster, 1)
	go func() {
		time.Sleep(300 * time.Millisecond)
		b2, err := NewBroadcaster(addr, st, BroadcasterOptions{})
		if err != nil {
			t.Errorf("restart on %s: %v", addr, err)
			restarted <- nil
			return
		}
		restarted <- b2
	}()
	defer func() {
		if b2 := <-restarted; b2 != nil {
			b2.Close()
		}
	}()

	// Read across the outage: the receiver must ride through on redials,
	// not abort.
	if err := read(2 * cyc.Len()); err != nil {
		t.Fatalf("across restart: %v", err)
	}
	if rx.Redials() == 0 {
		t.Fatal("stream survived the restart without a single redial — outage never happened?")
	}
	if rx.Stale() {
		t.Fatal("same-cycle restart marked the receiver stale")
	}
}

// TestRestartWithDifferentCycleAborts: the broadcaster comes back serving
// different air (another cycle geometry). Resuming would silently corrupt
// the partial answer, so the receiver must abort with ErrRestarted and
// mark itself stale for the session layer to re-attach.
func TestRestartWithDifferentCycleAborts(t *testing.T) {
	g := conformance.Network(t, 200, 300, 15)
	servers := testServers(t, g)
	nr, eb := servers[1], servers[0]
	if nr.Cycle().Len() == eb.Cycle().Len() {
		t.Skip("test networks built identical cycle lengths; geometry change undetectable")
	}
	st := startStation(t, nr)
	b, err := NewBroadcaster("127.0.0.1:0", st, BroadcasterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	addr := b.Addr().String()

	rx, err := Dial(addr, ReceiverOptions{
		Timeout: 150 * time.Millisecond, Retries: 2,
		Redial: 4, DialTimeout: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	if _, ok := rx.At(rx.Start()); !ok {
		t.Fatal("first position lost on a clean loopback")
	}

	b.Close()
	st2 := startStation(t, eb) // different scheme, different cycle length
	b2, err := NewBroadcaster(addr, st2, BroadcasterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()

	read := func() (err error) {
		defer broadcast.RecoverCancel(&err)
		for i := 1; i < 1<<20; i++ {
			rx.At(rx.Start() + i)
		}
		return nil
	}
	err = read()
	if !errors.Is(err, ErrRestarted) {
		t.Fatalf("read across a different-cycle restart: err %v, want ErrRestarted", err)
	}
	if !rx.Stale() {
		t.Fatal("receiver not marked stale after ErrRestarted")
	}
}

// TestRedialExhaustionDies: with the broadcaster gone for good, the redial
// budget runs out and the feed aborts with ErrDead — bounded, never an
// infinite reconnect loop.
func TestRedialExhaustionDies(t *testing.T) {
	g := conformance.Network(t, 200, 300, 17)
	srv := testServers(t, g)[1]
	st := startStation(t, srv)
	b := serve(t, st, BroadcasterOptions{})
	rx, err := Dial(b.Addr().String(), ReceiverOptions{
		Timeout: 100 * time.Millisecond, Retries: 2,
		Redial: 2, DialTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	if _, ok := rx.At(rx.Start()); !ok {
		t.Fatal("first position lost on a clean loopback")
	}
	b.Close()

	read := func() (err error) {
		defer broadcast.RecoverCancel(&err)
		for i := 1; i < 1<<20; i++ {
			rx.At(rx.Start() + i)
		}
		return nil
	}
	err = read()
	if !errors.Is(err, ErrDead) {
		t.Fatalf("read against a gone broadcaster: err %v, want ErrDead", err)
	}
	if rx.Redials() == 0 {
		t.Fatal("feed died without spending its redial budget")
	}
}
