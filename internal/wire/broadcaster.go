package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/station"
)

// Package-level instruments (DESIGN.md §10).
var (
	obsSent = obs.GetCounter("air_wire_datagrams_sent_total",
		"framed broadcast packets written to the socket")
	obsHellos = obs.GetCounter("air_wire_hellos_total",
		"handshakes accepted by wire broadcasters")
	obsRemotes = obs.GetGauge("air_wire_remotes",
		"remote receivers currently subscribed over the wire")
	obsExpired = obs.GetCounter("air_wire_expired_remotes_total",
		"remote receivers dropped for idling past the timeout")
	obsRecv = obs.GetCounter("air_wire_datagrams_received_total",
		"datagrams received by wire receivers")
	obsCorrupt = obs.GetCounter("air_wire_corrupt_frames_total",
		"received datagrams rejected by the frame integrity check")
	obsGaps = obs.GetCounter("air_wire_gap_packets_total",
		"positions a receiver served as lost because the wire skipped past them")
	obsBusy = obs.GetCounter("air_wire_refused_remotes_total",
		"hellos refused with a busy frame (admission control: remote cap or full station)")
)

// BroadcasterOptions tune a wire broadcaster. The zero value is a
// production transport: no corruption hook, 30s idle expiry.
type BroadcasterOptions struct {
	// IdleTimeout drops a remote that has sent no hello/want this long: a
	// receiver that vanished without a bye must not hold its subscription
	// (and, through backpressure, the station) forever. Default 30s.
	IdleTimeout time.Duration
	// Corrupt, when set, intercepts every outgoing data frame: tests use it
	// to flip bits (the receiver must reject the frame by CRC and account
	// the position as lost) or return nil to drop the datagram outright.
	// The callback may mutate and return frame in place. It must be safe
	// for concurrent use — one pump goroutine per remote calls it.
	// chaos.Injector.WireHook is the standard deterministic implementation.
	Corrupt func(pos uint64, frame []byte) []byte
	// MaxRemotes caps concurrently subscribed remotes: a hello past the cap
	// is answered with a busy frame (a typed refusal the receiver surfaces
	// as ErrRefused) instead of a subscription the station cannot afford.
	// A full station (station.ErrFull) is shed the same way. 0 = unlimited.
	MaxRemotes int
}

// Broadcaster drains a live station onto a UDP socket: every remote
// receiver that completes the hello/welcome handshake gets its own station
// subscription and a pump goroutine streaming framed packets from its
// subscribe position, paced by the receiver's want/limit credit. One
// Broadcaster serves any number of remotes; the station's own clock (and
// its lossless virtual-clock backpressure or paced-clock drop semantics)
// stays the single source of air truth.
type Broadcaster struct {
	st   *station.Station
	opts BroadcasterOptions
	conn *net.UDPConn

	cancel  context.CancelFunc
	ctx     context.Context
	wg      sync.WaitGroup
	started time.Time

	mu      sync.Mutex
	remotes map[string]*remote
	closed  bool
}

// remote is one receiver's server-side state.
type remote struct {
	addr *net.UDPAddr
	sub  *station.Sub
	// want is the lowest position the receiver still needs; limit the
	// exclusive credit bound it granted. Both only ever advance.
	want  atomic.Int64
	limit atomic.Int64
	// credit wakes a pump parked on exhausted credit.
	credit chan struct{}
	// lastSeen is the monotonic time (ns since broadcaster start) of the
	// remote's last control frame; the janitor expires silent remotes.
	lastSeen  atomic.Int64
	done      chan struct{}
	closeOnce sync.Once
}

// NewBroadcaster binds addr (e.g. ":9040", "127.0.0.1:0") and starts
// serving the station's broadcast to remote receivers. The station must be
// on the air (remotes subscribe at hello time). Close releases the socket
// and every remote subscription.
func NewBroadcaster(addr string, st *station.Station, opts BroadcasterOptions) (*Broadcaster, error) {
	if st == nil {
		return nil, fmt.Errorf("wire: nil station")
	}
	if opts.IdleTimeout <= 0 {
		opts.IdleTimeout = 30 * time.Second
	}
	// Refuse up front a cycle whose kind schedule cannot be welcomed,
	// rather than silently ignoring every hello later.
	if _, err := welcomeFor(st, 0); err != nil {
		return nil, err
	}
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	conn, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	// Control frames from a whole fleet of remotes funnel into this one
	// socket; ask for room so a want burst is not dropped (best effort —
	// a lost want is re-sent by the receiver's silence timeout anyway).
	conn.SetReadBuffer(1 << 20)
	b := &Broadcaster{
		st:      st,
		opts:    opts,
		conn:    conn,
		remotes: make(map[string]*remote),
		started: time.Now(),
	}
	b.ctx, b.cancel = context.WithCancel(context.Background())
	b.wg.Add(2)
	go b.readLoop()
	go b.janitor()
	return b, nil
}

// welcomeFor assembles the handshake reply for a subscription starting at
// start: the cycle geometry and the RLE kind schedule the receiver serves
// wire losses from.
func welcomeFor(st *station.Station, start int) ([]byte, error) {
	cyc := st.Cycle()
	kinds := make([]packet.Kind, cyc.Len())
	for i := range kinds {
		kinds[i] = cyc.Packets[i].Kind
	}
	return appendWelcome(nil, welcome{
		Start:    uint64(start),
		CycleLen: uint32(cyc.Len()),
		Version:  cyc.Version,
		Rate:     uint32(st.Rate()),
		Kinds:    kinds,
	})
}

// Addr returns the bound socket address (useful with ":0").
func (b *Broadcaster) Addr() net.Addr { return b.conn.LocalAddr() }

// Remotes returns the number of currently subscribed remote receivers.
func (b *Broadcaster) Remotes() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.remotes)
}

// Close stops serving: every remote gets a best-effort bye, every pump
// exits and releases its station subscription, and the socket closes.
// Safe to call more than once.
func (b *Broadcaster) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	remotes := make([]*remote, 0, len(b.remotes))
	for _, r := range b.remotes {
		remotes = append(remotes, r)
	}
	b.mu.Unlock()

	bye := appendBye(nil)
	for _, r := range remotes {
		b.conn.WriteToUDP(bye, r.addr)
		r.shut()
	}
	b.cancel()
	// Closing the socket unblocks the read loop; pump writes after this
	// point fail harmlessly (they check the error before counting).
	b.conn.Close()
	b.wg.Wait()
}

// readLoop is the control plane: one goroutine owns every inbound datagram
// (hello, want, bye) and mutates remote credit; pumps only read it.
func (b *Broadcaster) readLoop() {
	defer b.wg.Done()
	buf := make([]byte, 2048)
	for {
		n, raddr, err := b.conn.ReadFromUDP(buf)
		if err != nil {
			if b.ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return
			}
			continue // transient (e.g. ICMP-induced) read error
		}
		ftype, body, err := packet.OpenEnvelope(buf[:n])
		if err != nil {
			obsCorrupt.Inc()
			continue
		}
		key := raddr.String()
		switch ftype {
		case frameHello:
			window, err := parseHello(body)
			if err != nil {
				continue
			}
			b.hello(key, raddr, int64(window))
		case frameWant:
			pos, limit, err := parseWant(body)
			if err != nil {
				continue
			}
			b.mu.Lock()
			r := b.remotes[key]
			b.mu.Unlock()
			if r != nil {
				r.touch(b.started)
				r.advance(int64(pos), int64(limit))
			}
		case frameBye:
			b.mu.Lock()
			r := b.remotes[key]
			b.mu.Unlock()
			if r != nil {
				r.shut()
			}
		}
	}
}

// hello subscribes a new remote (or re-welcomes a known one whose welcome
// datagram was lost) and answers with the stream geometry.
func (b *Broadcaster) hello(key string, raddr *net.UDPAddr, window int64) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	if r := b.remotes[key]; r != nil {
		b.mu.Unlock()
		r.touch(b.started)
		if w, err := welcomeFor(b.st, r.sub.Start()); err == nil {
			b.conn.WriteToUDP(w, raddr)
		}
		return
	}
	if b.opts.MaxRemotes > 0 && len(b.remotes) >= b.opts.MaxRemotes {
		n := len(b.remotes)
		b.mu.Unlock()
		b.refuse(raddr, n)
		return
	}
	b.mu.Unlock()

	// Subscribe outside the lock (the station takes its own); a hello
	// while the station is off the air gets no welcome — the receiver's
	// dial retry reports it as nobody answering. A full station is a typed
	// refusal: the client was shed, not lost.
	sub, err := b.st.Subscribe(0, 0)
	if err != nil {
		if errors.Is(err, station.ErrFull) {
			b.refuse(raddr, b.Remotes())
		}
		return
	}
	w, err := welcomeFor(b.st, sub.Start())
	if err != nil {
		sub.Close()
		return
	}
	r := &remote{
		addr:   raddr,
		sub:    sub,
		credit: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	r.want.Store(int64(sub.Start()))
	r.limit.Store(int64(sub.Start()) + window)
	r.touch(b.started)

	b.mu.Lock()
	if b.closed || b.remotes[key] != nil {
		b.mu.Unlock()
		sub.Close()
		return
	}
	if b.opts.MaxRemotes > 0 && len(b.remotes) >= b.opts.MaxRemotes {
		// Lost an admission race while subscribing outside the lock.
		n := len(b.remotes)
		b.mu.Unlock()
		sub.Close()
		b.refuse(raddr, n)
		return
	}
	b.remotes[key] = r
	b.mu.Unlock()
	obsHellos.Inc()
	obsRemotes.Inc()

	// Welcome before the first data datagram: on an ordered path the
	// receiver then always completes its handshake before the stream
	// starts (a reordering network can still overtake it, in which case
	// the overtaken positions surface as ordinary wire gaps).
	b.conn.WriteToUDP(w, raddr)
	b.wg.Add(1)
	go b.pump(key, r)
}

// refuse sheds a hello with a typed busy frame: the client learns it was
// refused (and fails fast with ErrRefused) instead of burning its whole
// dial deadline on silence.
func (b *Broadcaster) refuse(raddr *net.UDPAddr, remotes int) {
	obsBusy.Inc()
	b.conn.WriteToUDP(appendBusy(nil, uint32(remotes), uint32(b.opts.MaxRemotes)), raddr)
}

// touch stamps the remote's liveness clock.
func (r *remote) touch(epoch time.Time) { r.lastSeen.Store(int64(time.Since(epoch))) }

// advance folds one credit update; positions only move forward.
func (r *remote) advance(pos, limit int64) {
	for {
		w := r.want.Load()
		if pos <= w || r.want.CompareAndSwap(w, pos) {
			break
		}
	}
	for {
		l := r.limit.Load()
		if limit <= l || r.limit.CompareAndSwap(l, limit) {
			break
		}
	}
	select {
	case r.credit <- struct{}{}:
	default:
	}
}

// shut releases the remote; the pump notices via done and unsubscribes.
func (r *remote) shut() { r.closeOnce.Do(func() { close(r.done) }) }

// pump streams the remote's subscription onto the socket: one framed
// datagram per position, sequential from the subscribe position, skipping
// ahead when the receiver's want jumps (the remote radio slept) and
// pausing whenever credit runs out.
func (b *Broadcaster) pump(key string, r *remote) {
	defer b.wg.Done()
	defer b.forget(key, r)
	defer r.sub.Close()

	cycleLen := uint32(b.st.Len())
	buf := make([]byte, 0, packet.MaxFrameSize)
	pos := r.sub.Start()
	for {
		select {
		case <-r.done:
			return
		case <-b.ctx.Done():
			return
		default:
		}
		// Credit gate: stream only positions the receiver asked for
		// (want <= pos < limit). While the pump waits for credit the
		// subscription stays live, exactly like an in-process subscriber
		// between At calls: its buffer fills and the virtual clock's
		// lossless backpressure holds the station, so the remote misses
		// nothing (on a paced clock real time does not wait and the
		// overrun surfaces as losses, like any slow radio). A remote that
		// stops granting credit without a bye is expired by the janitor,
		// which bounds how long it can hold the air.
		for {
			if w := r.want.Load(); int64(pos) < w {
				pos = int(w)
			}
			if int64(pos) < r.limit.Load() {
				break
			}
			select {
			case <-r.credit:
			case <-r.done:
				return
			case <-b.ctx.Done():
				return
			}
		}
		p, ok := r.sub.At(pos)
		if ok {
			frame := packet.AppendFrame(buf[:0], uint64(pos), cycleLen, p)
			if b.opts.Corrupt != nil {
				frame = b.opts.Corrupt(uint64(pos), frame)
			}
			if frame != nil {
				if _, err := b.conn.WriteToUDP(frame, r.addr); err == nil {
					obsSent.Inc()
				}
			}
		}
		// A position the subscription itself lost (paced-clock backpressure
		// drop) is not sent: the receiver sees the wire skip past it and
		// serves it as a lost reception, same as any dropped datagram.
		pos++
	}
}

// forget removes the remote from the table once its pump has exited.
func (b *Broadcaster) forget(key string, r *remote) {
	r.shut()
	b.mu.Lock()
	if b.remotes[key] == r {
		delete(b.remotes, key)
	}
	b.mu.Unlock()
	obsRemotes.Dec()
}

// janitor expires remotes that stopped sending control traffic without a
// bye: their subscriptions must not pin the station's epoch history (or,
// parked forever, its subscriber table).
func (b *Broadcaster) janitor() {
	defer b.wg.Done()
	tick := time.NewTicker(b.opts.IdleTimeout / 2)
	defer tick.Stop()
	for {
		select {
		case <-b.ctx.Done():
			return
		case <-tick.C:
		}
		cutoff := int64(time.Since(b.started)) - int64(b.opts.IdleTimeout)
		b.mu.Lock()
		var expired []*remote
		for _, r := range b.remotes {
			if r.lastSeen.Load() < cutoff {
				expired = append(expired, r)
			}
		}
		b.mu.Unlock()
		for _, r := range expired {
			obsExpired.Inc()
			r.shut()
		}
	}
}
