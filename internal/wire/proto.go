// Package wire puts the broadcast on a real wire: a UDP datagram transport
// carrying the fixed-size packet encoding of internal/packet behind the
// feed interfaces of internal/broadcast. A Broadcaster drains a live
// station.Station onto a socket — one framed datagram per packet, one
// per-remote subscription with receiver-driven credit — and a Receiver
// presents the received datagrams as a broadcast.Feed, so the ordinary
// Tuner (and therefore every scheme client, and deploy.Session unchanged)
// runs on top of a remote broadcast exactly as it does in process.
//
// Loss is now real: a datagram the network drops, truncates or corrupts
// (every frame carries the CRC32-C envelope of internal/packet) surfaces to
// the client as a corrupted reception counted in Tuner.Lost, never as a
// wrong answer. On top of the physical loss the receiver applies the same
// deterministic injected-loss draw as the simulator (broadcast.Lost over
// (seed, position) at serve time), which is what keeps a loopback receiver
// at zero injected loss bit-identical — answers and tuning/latency/lost
// accounting — to an offline replay from the same tune-in position.
//
// Control protocol (all frames ride the packet envelope; data frames use
// packet.FrameData, control frames the 0x10+ range):
//
//	hello    receiver -> broadcaster  window u32 (initial credit request)
//	welcome  broadcaster -> receiver  start u64, cycleLen u32, version u32,
//	                                  rate u32, kind schedule (RLE)
//	want     receiver -> broadcaster  pos u64 (lowest position still
//	                                  needed), limit u64 (exclusive credit)
//	bye      either direction         stream over
//	busy     broadcaster -> receiver  remotes u32, max u32 (admission
//	                                  refusal: at capacity, try elsewhere)
//
// The welcome's kind schedule lets the receiver serve a position the wire
// lost with the correct packet kind (clients may inspect Kind even on a
// corrupted reception — the radio knows what slot it was tuned to), exactly
// like the in-process feeds serve losses from the cycle itself.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/packet"
)

// Control frame types, in the envelope range reserved for transports.
const (
	frameHello   uint8 = 0x10
	frameWelcome uint8 = 0x11
	frameWant    uint8 = 0x12
	frameBye     uint8 = 0x13
	frameBusy    uint8 = 0x14
)

// errProto reports a syntactically valid envelope whose control body does
// not parse; like corrupt frames, such datagrams are dropped, never fatal.
var errProto = errors.New("wire: malformed control frame")

// welcome is the handshake reply: everything a receiver needs to serve the
// broadcast as a Feed with no side channel.
type welcome struct {
	Start    uint64 // absolute position of the remote's first packet
	CycleLen uint32
	Version  uint32 // cycle version on the air at subscribe time
	Rate     uint32 // bit rate queries are costed at
	Kinds    []packet.Kind
}

// appendHello frames a hello with the receiver's requested initial credit
// window in packets.
func appendHello(dst []byte, window uint32) []byte {
	var body [4]byte
	binary.LittleEndian.PutUint32(body[:], window)
	return packet.AppendEnvelope(dst, frameHello, body[:])
}

// parseHello returns the requested credit window.
func parseHello(body []byte) (window uint32, err error) {
	if len(body) != 4 {
		return 0, fmt.Errorf("%w: hello body of %d bytes", errProto, len(body))
	}
	return binary.LittleEndian.Uint32(body), nil
}

// appendWelcome frames the handshake reply. The kind schedule is run-length
// encoded; cycles are built section by section, so runs are O(sections),
// not O(packets).
func appendWelcome(dst []byte, w welcome) ([]byte, error) {
	if w.CycleLen == 0 || int(w.CycleLen) != len(w.Kinds) {
		return nil, fmt.Errorf("wire: welcome kind schedule of %d entries for a %d-packet cycle", len(w.Kinds), w.CycleLen)
	}
	body := make([]byte, 0, 64)
	body = binary.LittleEndian.AppendUint64(body, w.Start)
	body = binary.LittleEndian.AppendUint32(body, w.CycleLen)
	body = binary.LittleEndian.AppendUint32(body, w.Version)
	body = binary.LittleEndian.AppendUint32(body, w.Rate)
	runs := 0
	for i := 0; i < len(w.Kinds); {
		j := i
		for j < len(w.Kinds) && w.Kinds[j] == w.Kinds[i] {
			j++
		}
		body = append(body, byte(w.Kinds[i]))
		body = binary.LittleEndian.AppendUint32(body, uint32(j-i))
		runs++
		i = j
	}
	if len(body) > 0xffff {
		// AppendEnvelope would panic; a cycle alternating kinds every packet
		// could get here, so refuse it as a broadcaster setup error instead.
		return nil, fmt.Errorf("wire: kind schedule of %d runs does not fit a welcome frame", runs)
	}
	return packet.AppendEnvelope(dst, frameWelcome, body), nil
}

// maxCycleLen bounds the cycle length a receiver accepts from a welcome: a
// hostile or corrupted (yet CRC-valid) schedule must not allocate
// unboundedly.
const maxCycleLen = 1 << 26

// parseWelcome decodes and validates a welcome body, expanding the kind
// schedule to one entry per cycle position.
func parseWelcome(body []byte) (welcome, error) {
	if len(body) < 20 {
		return welcome{}, fmt.Errorf("%w: welcome body of %d bytes", errProto, len(body))
	}
	w := welcome{
		Start:    binary.LittleEndian.Uint64(body),
		CycleLen: binary.LittleEndian.Uint32(body[8:]),
		Version:  binary.LittleEndian.Uint32(body[12:]),
		Rate:     binary.LittleEndian.Uint32(body[16:]),
	}
	if w.CycleLen == 0 || w.CycleLen > maxCycleLen || w.Start > 1<<62 {
		return welcome{}, fmt.Errorf("%w: welcome cycleLen %d start %d", errProto, w.CycleLen, w.Start)
	}
	w.Kinds = make([]packet.Kind, 0, w.CycleLen)
	for rest := body[20:]; len(rest) > 0; {
		if len(rest) < 5 {
			return welcome{}, fmt.Errorf("%w: truncated kind run", errProto)
		}
		kind := packet.Kind(rest[0])
		n := binary.LittleEndian.Uint32(rest[1:])
		if n == 0 || uint64(len(w.Kinds))+uint64(n) > uint64(w.CycleLen) {
			return welcome{}, fmt.Errorf("%w: kind schedule overruns the cycle", errProto)
		}
		for i := uint32(0); i < n; i++ {
			w.Kinds = append(w.Kinds, kind)
		}
		rest = rest[5:]
	}
	if len(w.Kinds) != int(w.CycleLen) {
		return welcome{}, fmt.Errorf("%w: kind schedule covers %d of %d positions", errProto, len(w.Kinds), w.CycleLen)
	}
	return w, nil
}

// appendWant frames a credit update: the receiver needs no position below
// pos and grants the broadcaster credit to stream positions below limit.
func appendWant(dst []byte, pos, limit uint64) []byte {
	var body [16]byte
	binary.LittleEndian.PutUint64(body[:], pos)
	binary.LittleEndian.PutUint64(body[8:], limit)
	return packet.AppendEnvelope(dst, frameWant, body[:])
}

// parseWant decodes a credit update.
func parseWant(body []byte) (pos, limit uint64, err error) {
	if len(body) != 16 {
		return 0, 0, fmt.Errorf("%w: want body of %d bytes", errProto, len(body))
	}
	pos = binary.LittleEndian.Uint64(body)
	limit = binary.LittleEndian.Uint64(body[8:])
	if pos > 1<<62 || limit > 1<<62 {
		return 0, 0, fmt.Errorf("%w: want pos %d limit %d", errProto, pos, limit)
	}
	return pos, limit, nil
}

// appendBye frames an end-of-stream notice.
func appendBye(dst []byte) []byte {
	return packet.AppendEnvelope(dst, frameBye, nil)
}

// appendBusy frames an admission refusal: the broadcaster (or its station)
// is at capacity and will not subscribe this remote. The body carries the
// current remote count and the cap, so a shed client can report *why* it
// was refused. Unlike silence, a busy frame lets the receiver fail fast
// with a typed error instead of burning its whole dial deadline.
func appendBusy(dst []byte, remotes, max uint32) []byte {
	var body [8]byte
	binary.LittleEndian.PutUint32(body[:], remotes)
	binary.LittleEndian.PutUint32(body[4:], max)
	return packet.AppendEnvelope(dst, frameBusy, body[:])
}

// parseBusy decodes an admission refusal.
func parseBusy(body []byte) (remotes, max uint32, err error) {
	if len(body) != 8 {
		return 0, 0, fmt.Errorf("%w: busy body of %d bytes", errProto, len(body))
	}
	return binary.LittleEndian.Uint32(body), binary.LittleEndian.Uint32(body[4:]), nil
}
