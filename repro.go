// Package repro is a Go reproduction of "Shortest Path Computation on Air
// Indexes" (Kellaris & Mouratidis, PVLDB 3(1), 2010): shortest-path query
// processing in road networks under the wireless broadcast model.
//
// A server pre-computes an air index for a road network and assembles a
// broadcast cycle; clients tune in at an arbitrary moment and answer
// shortest-path queries locally, accounting the paper's performance
// factors (tuning time, access latency, peak memory, CPU time, energy).
//
// The public API is two nouns. A Deployment is built once from a graph via
// functional options and composes everything server-side — scheme build,
// channel sharding, live stations, dynamic updates, points of interest:
//
//	g, _ := repro.GeneratePreset("germany", 0.1, 42)
//	d, _ := repro.Deploy(g, repro.WithMethod(repro.NR))
//	defer d.Close()
//
// A Session is one client's handle with one query path for every
// deployment shape — offline replay, live subscription, channel-hopping
// radio, or version-window re-entry on a churning broadcast:
//
//	s, _ := d.Session(ctx, repro.SessionOptions{TuneIn: 1234})
//	res, _ := s.Query(ctx, 17, 4242)
//	fmt.Println(res.Dist, res.Metrics.TuningPackets)
//
// Live deployments (WithLive) additionally load-test with
// Deployment.RunFleet, which dispatches plain, channel-hopping, or churn
// fleets on the deployment's shape. The pre-PR-5 free functions
// (NewServer/NewChannel/Ask, NewStation/RunFleet, NewMultiStation/
// RunFleetMulti, NewUpdateManager/RunFleetChurn, SpatialServer) remain as
// deprecated wrappers, pinned bit-identical to the Deployment/Session path
// by the facade equivalence suite.
//
// The paper's two contributions are the EB (Elliptic Boundary) and NR
// (Next Region) methods; DJ, AF, LD, SPQ and HiTi are the adapted
// competitors of its Section 3.2. See DESIGN.md for the system inventory
// (§9 for this API and the migration table) and EXPERIMENTS.md for the
// reproduced evaluation.
package repro

import (
	"context"
	"io"
	"net/http"

	"repro/internal/broadcast"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/fleet"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/multichannel"
	"repro/internal/netgen"
	"repro/internal/obs"
	"repro/internal/precompute"
	"repro/internal/scheme"
	"repro/internal/spath"
	"repro/internal/station"
	"repro/internal/update"
	"repro/internal/wire"
)

// Method names an air-index scheme.
type Method = deploy.Method

// The seven methods of the paper's evaluation.
const (
	EB   = deploy.EB   // Elliptic Boundary (Section 4, this paper's contribution)
	NR   = deploy.NR   // Next Region (Section 5, this paper's contribution)
	DJ   = deploy.DJ   // broadcast adaptation of Dijkstra's algorithm
	AF   = deploy.AF   // broadcast adaptation of ArcFlag
	LD   = deploy.LD   // broadcast adaptation of Landmark (ALT)
	SPQ  = deploy.SPQ  // broadcast adaptation of the shortest-path quadtree
	HiTi = deploy.HiTi // broadcast adaptation of HiTi
)

// Methods lists all implemented methods in the paper's presentation order.
var Methods = deploy.Methods

// Typed failure sentinels (match with errors.Is). They classify the
// outcomes a chaos-hardened deployment must account explicitly: degraded
// answers (budgets), shed clients (admission control), and dead or
// restarted broadcasters.
var (
	// ErrBudgetExceeded classifies a session query aborted by its answer
	// budget (SessionOptions.Deadline / TuningBudget); the concrete error
	// is a *BudgetError.
	ErrBudgetExceeded = deploy.ErrBudgetExceeded
	// ErrWireDead marks a wire broadcaster gone for good: silent past every
	// retry and redial.
	ErrWireDead = wire.ErrDead
	// ErrWireRefused marks an admission refusal: the broadcaster answered
	// with a busy frame (at capacity) instead of a welcome.
	ErrWireRefused = wire.ErrRefused
	// ErrWireRestarted marks a redial that found the broadcaster serving a
	// different cycle: the subscription is stale and the session
	// re-attaches fresh.
	ErrWireRestarted = wire.ErrRestarted
	// ErrStationFull marks a subscription refused by a station's
	// MaxSubscribers admission cap.
	ErrStationFull = station.ErrFull
	// ErrTuningBudget marks a tuner that exhausted its packet allowance
	// (the underlying cause inside a *BudgetError with Reason "tuning").
	ErrTuningBudget = broadcast.ErrTuningBudget
)

// NewChaosProxy starts a fault proxy listening at listen and relaying to
// the broadcaster at upstream, applying the per-direction fault plans of
// opts to every datagram. Point WithRemote (or airfleet -connect) at
// Proxy.Addr() instead of the broadcaster to load-test through faults.
func NewChaosProxy(listen, upstream string, opts ChaosProxyOptions) (*ChaosProxy, error) {
	return chaos.NewProxy(listen, upstream, opts)
}

// Params tunes a method's server. Zero values select the paper's defaults.
type Params = deploy.Params

// Re-exported core types. The root package is a facade: the full
// implementation lives in internal packages, one per subsystem, and the
// Deployment/Session pair (internal/deploy) orchestrates them.
type (
	// Deployment is a built broadcast deployment — graph, scheme server,
	// and the transport for its shape (offline channel, K-channel air,
	// live station(s), versioned update manager). Build one with Deploy.
	Deployment = deploy.Deployment
	// Session is one client's handle on a Deployment: the uniform query
	// path (Query, and Range/KNN when POI-enabled) over every shape.
	Session = deploy.Session
	// SessionOptions tune a client handle (tune-in position, loss-pattern
	// seed, start channel).
	SessionOptions = deploy.SessionOptions
	// DeployOption is one functional configuration choice passed to Deploy.
	DeployOption = deploy.Option
	// UpdateConfig configures a dynamic deployment (WithUpdates): the
	// rebuild hook and the synthetic churn feed RunFleet applies.
	UpdateConfig = deploy.UpdateConfig
	// RunReport is Deployment.RunFleet's outcome: the fleet aggregate plus
	// churn accounting when the deployment is dynamic.
	RunReport = deploy.RunReport

	// Graph is an immutable directed weighted road network.
	Graph = graph.Graph
	// NodeID identifies a node.
	NodeID = graph.NodeID
	// Server is a built air-index method: pre-computation plus cycle.
	Server = scheme.Server
	// Client answers queries against a broadcast tuner.
	Client = scheme.Client
	// Query is a shortest-path request.
	Query = scheme.Query
	// Result carries the path, its cost and the per-query metrics.
	Result = scheme.Result
	// Metrics aggregates the paper's per-query performance factors.
	Metrics = metrics.Query
	// Channel is a broadcast channel repeating a cycle, with optional
	// deterministic packet loss.
	Channel = broadcast.Channel
	// Tuner is a client's position on a channel.
	Tuner = broadcast.Tuner
	// Feed is any packet source a Tuner can run on: an offline Channel or a
	// live station Subscription.
	Feed = broadcast.Feed
	// Station is a live broadcast station streaming a cycle to concurrent
	// subscribers.
	Station = station.Station
	// StationConfig tunes a station's clock (virtual or paced to a bit
	// rate) and per-subscriber buffering; WithLive takes one.
	StationConfig = station.Config
	// Subscription is one listener's live view of a station's air; it is a
	// Feed, so NewFeedTuner(sub, sub.Start()) runs any client on it.
	Subscription = station.Sub
	// WireBroadcaster drains a live station onto a UDP socket, framing
	// every packet (magic, length, CRC32-C) so remote receivers detect
	// truncation and corruption. Serve one from a live deployment with
	// Deployment.ServeWire.
	WireBroadcaster = wire.Broadcaster
	// WireBroadcasterOptions tune a broadcaster (idle-remote expiry, and a
	// test-only frame corruption hook).
	WireBroadcasterOptions = wire.BroadcasterOptions
	// WireReceiver is a UDP subscription to a WireBroadcaster: a Feed, so
	// NewFeedTuner(rx, rx.Start()) runs any client on it. Datagrams the
	// network drops or corrupts surface as lost packets (WireLost,
	// Corrupted), never as wrong data.
	WireReceiver = wire.Receiver
	// WireReceiverOptions tune a receiver dial: injected loss on top of
	// real network loss, credit window, timeouts, and the redial budget a
	// receiver spends surviving a broadcaster restart.
	WireReceiverOptions = wire.ReceiverOptions
	// ChaosPlan is one direction's deterministic fault schedule — Gilbert-
	// Elliott bursty loss, reordering, duplication, corruption, blackhole
	// windows — seeded like the simulator, so every chaos run replays.
	ChaosPlan = chaos.Plan
	// ChaosProxy is a netem-style UDP fault box: dial it instead of the
	// broadcaster and every datagram through it runs the fault plan.
	ChaosProxy = chaos.Proxy
	// ChaosProxyOptions pair a downstream and an upstream ChaosPlan.
	ChaosProxyOptions = chaos.ProxyOptions
	// ChaosStats counts the faults a proxy (or injector) actually applied.
	ChaosStats = chaos.Stats
	// BudgetError reports a degraded answer: a session query aborted by its
	// tuning or deadline budget (errors.Is ErrBudgetExceeded).
	BudgetError = deploy.BudgetError
	// FleetOptions tunes a concurrent load run (Deployment.RunFleet).
	FleetOptions = fleet.Options
	// FleetResult aggregates a load run: means, p50/p95/p99 tails and
	// queries/sec throughput.
	FleetResult = fleet.Result
	// ChannelStats is one channel's share of a multi-channel fleet run.
	ChannelStats = fleet.ChannelStats
	// Quantiles is a p50/p95/p99 summary of one metric.
	Quantiles = metrics.Quantiles
	// MultiStation is a live K-channel broadcast: the cycle sharded by
	// region across K station shards on one global clock, with an on-air
	// directory so radios hop to exactly the channels a query needs.
	MultiStation = multichannel.Station
	// MultiSub is a channel-hopping radio subscription: a Feed over the
	// logical cycle whose latency runs on the global clock and whose tuning
	// is charged per channel.
	MultiSub = multichannel.Rx
	// MultiSubOptions pick a radio's start channel and whether it
	// bootstraps the channel directory from the air (cold) or holds a
	// cached copy (warm, the default).
	MultiSubOptions = multichannel.RxOptions
	// WeightUpdate sets the weight of one directed arc: the mutation unit
	// of the dynamic-network subsystem.
	WeightUpdate = graph.WeightUpdate
	// UpdateManager owns a versioned broadcast's server side: it accepts
	// weight-update batches, rebuilds the scheme structures into new cycle
	// versions (with KindDelta patch trailers), and hands the cycles to a
	// live station's Swap.
	UpdateManager = update.Manager
	// UpdateBuild is one immutable cycle version an UpdateManager produced.
	UpdateBuild = update.Build
	// ChurnOptions tunes an update-churn load run: fleet parameters plus
	// the synthetic traffic feed (batches, batch size, interval, mode).
	ChurnOptions = fleet.ChurnOptions
	// ChurnResult aggregates a churn run: the usual fleet result plus the
	// staleness accounting (swaps, stale queries, re-entries, clean vs
	// stale latency).
	ChurnResult = fleet.ChurnResult
	// UpdateMode picks the weight-change profile of the synthetic traffic
	// feed (mixed, increase, decrease, no-op).
	UpdateMode = update.Mode

	// MetricPoint is one observability series' instantaneous value —
	// what Deployment.Observe and airserve's /statusz snapshot.
	MetricPoint = obs.Point
	// QueryTrace is a per-query flight recorder: a fixed-capacity ring of
	// span events (tune-in, directory read, channel hop, retry, version
	// re-entry, patch apply) a session records when SessionOptions.Trace
	// is set. Build one with NewQueryTrace.
	QueryTrace = obs.Trace
	// TraceEvent is one recorded span event of a QueryTrace.
	TraceEvent = obs.Event
	// DeployStatus is a deployment's operational snapshot (shape, cycle
	// version on the air, live subscriber count) — one /statusz entry.
	DeployStatus = deploy.Status
)

// Weight-change profiles for UpdateConfig.Mode and ChurnOptions.Mode.
const (
	UpdateMixed    = update.ModeMixed
	UpdateIncrease = update.ModeIncrease
	UpdateDecrease = update.ModeDecrease
	UpdateNoop     = update.ModeNoop
)

// --- The Deployment/Session API (PR 5): one constructor, one query path. ---

// Deploy builds a Deployment of g from functional options: the scheme
// server (WithMethod/WithParams, through the shared build cache when
// WithCache names the network), sharding (WithChannels), the live
// station(s) (WithLive), deterministic packet loss (WithLoss), dynamic
// updates (WithUpdates), on-air spatial queries (WithPOI) and remote
// tuning over UDP (WithRemote). A live deployment goes on the air on
// Start (or lazily on first Session or RunFleet); Close takes it off.
func Deploy(g *Graph, opts ...DeployOption) (*Deployment, error) { return deploy.Deploy(g, opts...) }

// WithMethod picks the air-index scheme (default NR).
func WithMethod(m Method) DeployOption { return deploy.WithMethod(m) }

// WithParams tunes the scheme server's build parameters.
func WithParams(p Params) DeployOption { return deploy.WithParams(p) }

// WithChannels shards the broadcast cycle across k parallel channels
// (regions in contiguous kd order, an on-air directory on every channel);
// session radios hop. k == 1 (the default) is the plain single channel,
// bit-for-bit the unsharded broadcast.
func WithChannels(k int) DeployOption { return deploy.WithChannels(k) }

// WithLive puts the deployment on the air: a live broadcast station (one
// per channel, on a shared clock when sharded) streams the cycle to
// concurrently subscribed sessions, and RunFleet load-tests it. Without it
// the deployment replays the cycle offline — the paper's model.
func WithLive(cfg StationConfig) DeployOption { return deploy.WithLive(cfg) }

// WithLoss sets the deterministic Bernoulli packet-loss rate in [0,1) and
// the loss-pattern seed: the offline air's pattern, and the default
// pattern seed of live subscriptions.
func WithLoss(rate float64, seed int64) DeployOption { return deploy.WithLoss(rate, seed) }

// WithUpdates makes the broadcast dynamic: a versioned update manager owns
// the cycle, RunFleet churns arc weights per cfg while the fleet answers,
// and sessions transparently re-enter queries that straddle a cycle swap.
// Requires WithLive on a single channel.
func WithUpdates(cfg UpdateConfig) DeployOption { return deploy.WithUpdates(cfg) }

// WithPOI flags points of interest per node and equips sessions with
// on-air spatial queries (Range, KNN) in network distance over an EB
// cycle — the paper's Section 8 future work.
func WithPOI(poi []bool) DeployOption { return deploy.WithPOI(poi) }

// WithCache keys the server build in the shared immutable build cache
// under the given canonical network name (e.g. "germany/0.05/42"):
// deployments naming the same (network, method, params) share one build.
func WithCache(network string) DeployOption { return deploy.WithCache(network) }

// WithDiskCache backs the build cache with a persistent disk tier rooted
// at dir (created if missing), budgeted to maxBytes (<= 0 means
// unbounded): keyed EB, NR and DJ builds persist their broadcast cycle
// and border precomputation, and a warm restart of the same deployment
// mmaps them back instead of re-running the Dijkstra storm. Requires
// WithCache to name the network; other methods still build cold.
func WithDiskCache(dir string, maxBytes int64) DeployOption {
	return deploy.WithDiskCache(dir, maxBytes)
}

// MergeFleetResults folds the results of N concurrently-run fleets —
// typically one per OS process, all tuned to the same wire broadcaster
// (cmd/airfleet) — into one controller-level result. Counts, deterministic
// aggregates and loss totals merge exactly; Elapsed is the longest part and
// QPS is recomputed over it; the p50/p95/p99 tails are read from merged
// latency histograms, so they are exact to one histogram bucket (~8%)
// even when the parts are skewed. Parts predating the histogram wire
// format degrade to N-weighted means of the parts' quantiles, with a
// logged downgrade. Parts disagreeing on method, bit rate or channel
// count are refused.
func MergeFleetResults(parts []FleetResult) (FleetResult, error) { return fleet.MergeResults(parts) }

// WithRemote tunes the deployment's sessions to a remote wire broadcaster
// at addr (host:port, UDP) instead of a local transport: every query dials
// a WireReceiver subscription, like a device in range of a real station.
// The local build must match the remote one — Deploy probes the
// broadcaster and refuses a cycle-length or version mismatch. Excludes
// WithLive, WithChannels and WithUpdates; WithLoss injects extra
// deterministic loss on top of whatever the wire really drops.
func WithRemote(addr string) DeployOption { return deploy.WithRemote(addr) }

// --- Observability (DESIGN.md §10): the process-wide metrics registry and
// per-query flight recorder. One registry serves every deployment in the
// process — airserve's admin listener exports it on /metrics, offline runs
// read the same series via Observe. ---

// Observe snapshots every registered observability series: station
// broadcast and drop counters, cache traffic, fleet progress, update
// rebuilds. Identical to what a live airserve -admin exports on /metrics.
func Observe() []MetricPoint { return obs.Snapshot() }

// WriteMetrics renders the observability registry in the Prometheus text
// exposition format (version 0.0.4).
func WriteMetrics(w io.Writer) error { return obs.WriteProm(w) }

// MetricsHandler returns the /metrics HTTP handler a daemon mounts on its
// admin listener (cmd/airserve does with -admin).
func MetricsHandler() http.Handler { return obs.Handler() }

// NewQueryTrace returns a flight recorder keeping the last capacity span
// events; hand it to a session via SessionOptions.Trace and read it back
// with Events after the query. Recording is allocation-free and does not
// change any query metric.
func NewQueryTrace(capacity int) *QueryTrace { return obs.NewTrace(capacity) }

// --- Server-side building blocks (shared by both API generations). ---

// NewServer builds the named method's server for g.
func NewServer(m Method, g *Graph, p Params) (Server, error) { return deploy.NewServer(m, g, p) }

// GeneratePreset builds a synthetic stand-in for one of the paper's five
// road networks ("milan", "germany", "argentina", "india", "sanfrancisco"),
// or the out-of-core "continent" stressor (10.4M directed arcs), scaled by
// scale (1.0 = paper-sized), deterministically from seed.
func GeneratePreset(name string, scale float64, seed int64) (*Graph, error) {
	p, err := netgen.PresetByName(name)
	if err != nil {
		return nil, err
	}
	return p.Scaled(scale).Generate(seed)
}

// Generate builds a synthetic road network with the exact node and
// (undirected) edge counts.
func Generate(nodes, edges int, seed int64) (*Graph, error) {
	return netgen.Generate(nodes, edges, seed)
}

// ReadGraph decodes a network in the binary format written by WriteGraph.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Decode(r) }

// WriteGraph encodes a network in the binary network format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.Encode(w, g) }

// ReadGraphText decodes the line-oriented text format ("v id x y" /
// "a tail head weight").
func ReadGraphText(r io.Reader) (*Graph, error) { return graph.DecodeText(r) }

// WriteGraphText encodes the line-oriented text format.
func WriteGraphText(w io.Writer, g *Graph) error { return graph.EncodeText(w, g) }

// ShortestPath computes the reference answer on the full network (no
// broadcasting): distance, path and settled-node count.
func ShortestPath(g *Graph, s, t NodeID) (float64, []NodeID, int) {
	return spath.PointToPoint(g, s, t)
}

// QueryFor builds a Query for two nodes of g (the client knows the node IDs
// and their coordinates).
func QueryFor(g *Graph, s, t NodeID) Query { return scheme.QueryFor(g, s, t) }

// RegionCentroids returns per-region centroids for a server built on a
// region partitioning (EB/NR), or nil for methods without regions: the
// input multichannel's Hilbert assignment mode needs.
func RegionCentroids(srv Server, g *Graph) [][2]float64 {
	type regioned interface{ Regions() *precompute.Regions }
	r, ok := srv.(regioned)
	if !ok {
		return nil
	}
	regs := r.Regions()
	return multichannel.Centroids(g, regs.Assign, regs.N)
}

// EnergyJoules estimates a query's client-side energy at the given channel
// bit rate using the paper's WaveLAN/ARM power model (Section 3.1).
func EnergyJoules(m Metrics, bitsPerSecond int) float64 {
	return m.EnergyJoules(bitsPerSecond)
}

// HeapBudgetBytes is the reference device's application heap (8 MB), the
// feasibility threshold of the paper's Table 2.
const HeapBudgetBytes = metrics.HeapBudgetBytes

// Channel rates used throughout the paper's evaluation.
const (
	Rate2Mbps   = metrics.RateFast
	Rate384Kbps = metrics.RateSlow
)

// --- Deprecated pre-PR-5 facade: one constructor + one run function per
// (scenario × transport) cell. Every wrapper below stays functional and is
// pinned bit-identical to its Deployment/Session counterpart by the
// equivalence suite (equivalence_test.go); new code should Deploy. ---

// NewChannel wraps a server's cycle in a broadcast channel with the given
// packet-loss rate in [0, 1) and seed.
//
// Deprecated: build a Deployment with Deploy(g, WithLoss(rate, seed))
// instead; the channel is composed internally.
func NewChannel(srv Server, lossRate float64, seed int64) (*Channel, error) {
	return broadcast.NewChannel(srv.Cycle(), lossRate, seed)
}

// NewTuner tunes into ch at the given absolute packet position — the moment
// the query is posed.
//
// Deprecated: Deployment.Session positions its own tuner
// (SessionOptions.TuneIn). NewTuner remains for custom feeds.
func NewTuner(ch *Channel, at int) *Tuner { return broadcast.NewTuner(ch, at) }

// NewFeedTuner tunes into any Feed — typically a live station Subscription
// at its Start position.
//
// Deprecated: Deployment.Session subscribes and positions its own tuner.
// NewFeedTuner remains for custom feeds.
func NewFeedTuner(f Feed, at int) *Tuner { return broadcast.NewFeedTuner(f, at) }

// Ask runs one query end to end: tune in at position `at`, process with a
// fresh client of srv, return the result.
//
// Deprecated: use Deploy + Session.Query. Ask routes through that exact
// path (the equivalence suite pins it bit-identical).
func Ask(ch *Channel, srv Server, g *Graph, s, t NodeID, at int) (Result, error) {
	d, err := deploy.FromServer(g, srv, ch)
	if err != nil {
		return Result{}, err
	}
	sess, err := d.Session(context.Background(), SessionOptions{TuneIn: at})
	if err != nil {
		return Result{}, err
	}
	return sess.Query(context.Background(), s, t)
}

// NewStation puts srv's cycle behind a live broadcast station. Call
// Start(ctx) to go on the air, Subscribe for each tuned-in client, and Stop
// (or cancel the context) to shut down.
//
// Deprecated: use Deploy(g, WithLive(cfg)); the Deployment owns the
// station's lifecycle (Start/Close) and Session subscribes to it.
func NewStation(srv Server, cfg StationConfig) (*Station, error) {
	return station.New(srv.Cycle(), cfg)
}

// RunFleet load-tests a live station with opts.Clients concurrent clients
// of srv answering a generated query workload over g (reference answers are
// pre-computed server-side for verification). The station must already be
// on the air. See cmd/airserve for the CLI front end.
//
// Deprecated: use Deploy(g, WithLive(cfg)) + Deployment.RunFleet, which
// runs the identical fleet engine on the identical workload pool.
func RunFleet(ctx context.Context, st *Station, srv Server, g *Graph, opts FleetOptions) (FleetResult, error) {
	return fleet.Run(ctx, st, srv, deploy.WorkloadFor(g, opts, st.Len()), opts)
}

// NewUpdateManager returns a versioned-cycle manager over srv (which must
// have been built for g). Apply weight-update batches to produce new cycle
// versions and hand each Build.Cycle to Station.Swap (or MultiStation.Swap
// after re-planning); with no updates applied the manager serves srv's own
// static cycle bit-identically. EB, NR and DJ rebuild natively.
//
// Deprecated: use Deploy(g, WithLive(cfg), WithUpdates(ucfg)); the
// Deployment wires the manager to its station and Deployment.Manager
// exposes it for explicit Apply/Swap control.
func NewUpdateManager(g *Graph, srv Server) (*UpdateManager, error) {
	return update.NewManager(g, srv, update.Config{})
}

// RunFleetChurn load-tests a live station while mgr's network churns: a
// background updater applies opts.Batches weight batches and swaps the
// station to each new cycle version, and opts.Fleet.Clients concurrent
// clients keep answering queries throughout, re-entering whenever a swap
// catches them mid-query. Every answer is verified against the Dijkstra
// reference of the network version it was computed on. The station must
// already be on the air broadcasting mgr's current cycle.
//
// Deprecated: use Deploy(g, WithLive(cfg), WithUpdates(ucfg)) +
// Deployment.RunFleet; the churn feed parameters move into UpdateConfig
// and the report's Churn field carries the staleness accounting.
func RunFleetChurn(ctx context.Context, st *Station, mgr *UpdateManager, g *Graph, opts ChurnOptions) (ChurnResult, error) {
	return fleet.RunChurn(ctx, st, mgr, deploy.WorkloadFor(g, opts.Fleet, st.Len()), opts)
}

// NewMultiStation shards srv's cycle across `channels` parallel broadcast
// channels (regions in contiguous kd order, global index copies round-robin,
// a directory segment on every channel) and puts one station shard per
// channel on a shared global clock. channels == 1 degrades to the identity
// plan: bit-for-bit the single Station substrate.
//
// Deprecated: use Deploy(g, WithChannels(k), WithLive(cfg)).
func NewMultiStation(srv Server, channels int, cfg StationConfig) (*MultiStation, error) {
	plan, err := multichannel.Build(srv.Cycle(), channels, multichannel.PlanOptions{})
	if err != nil {
		return nil, err
	}
	return multichannel.NewStation(plan, cfg)
}

// RunFleetMulti is RunFleet against a multi-channel station: the result
// additionally carries per-channel packet counts, touched-query tails and
// QPS, plus the mean channel-hop count.
//
// Deprecated: use Deploy(g, WithChannels(k), WithLive(cfg)) +
// Deployment.RunFleet, which dispatches the identical channel-hopping
// fleet on the deployment's shape.
func RunFleetMulti(ctx context.Context, mst *MultiStation, srv Server, g *Graph, opts FleetOptions) (FleetResult, error) {
	return fleet.RunMulti(ctx, mst, srv, deploy.WorkloadFor(g, opts, mst.Len()), opts)
}

// --- On-air spatial queries over the road network (the paper's Section 8
// future work: "range and nearest neighbor retrieval"). ---

// POIResult is a point of interest with its network distance.
type POIResult = core.POIResult

// SpatialServer is an EB server whose cycle carries POI-flagged nodes and
// answers on-air range and kNN queries in network distance.
//
// Deprecated: use Deploy(g, WithPOI(poi)) + Session.Range / Session.KNN;
// the spatial island folds into the uniform query path.
type SpatialServer struct {
	eb *core.EB
}

// NewSpatialServer builds an EB-based spatial broadcast for g; poi flags
// the points of interest per node.
//
// Deprecated: use Deploy(g, WithPOI(poi)).
func NewSpatialServer(g *Graph, poi []bool, p Params) (*SpatialServer, error) {
	opts := p.CoreOptions()
	opts.POI = poi
	eb, err := core.NewEB(g, opts)
	if err != nil {
		return nil, err
	}
	return &SpatialServer{eb: eb}, nil
}

// Cycle returns the broadcast cycle.
func (s *SpatialServer) Cycle() *broadcast.Cycle { return s.eb.Cycle() }

// NewChannel wraps the spatial cycle in a channel.
func (s *SpatialServer) NewChannel(lossRate float64, seed int64) (*Channel, error) {
	return broadcast.NewChannel(s.eb.Cycle(), lossRate, seed)
}

// session opens a one-shot Session over the spatial cycle on ch — the
// wrappers below route through the exact Deployment/Session path. g is
// the caller's graph, exactly as the pre-PR-5 implementations resolved
// query coordinates from it.
func (s *SpatialServer) session(ch *Channel, g *Graph, at int) (*Session, error) {
	d, err := deploy.FromServer(g, s.eb, ch)
	if err != nil {
		return nil, err
	}
	return d.Session(context.Background(), SessionOptions{TuneIn: at})
}

// RangeOnAir returns every POI within network distance radius of node from,
// sorted by distance, tuning in at position `at`.
//
// Deprecated: use Deploy(g, WithPOI(poi)) + Session.Range.
func (s *SpatialServer) RangeOnAir(ch *Channel, g *Graph, from NodeID, radius float64, at int) ([]POIResult, Metrics, error) {
	sess, err := s.session(ch, g, at)
	if err != nil {
		return nil, Metrics{}, err
	}
	return sess.Range(context.Background(), from, radius)
}

// KNNOnAir returns the k POIs nearest to node from in network distance.
//
// Deprecated: use Deploy(g, WithPOI(poi)) + Session.KNN.
func (s *SpatialServer) KNNOnAir(ch *Channel, g *Graph, from NodeID, k int, at int) ([]POIResult, Metrics, error) {
	sess, err := s.session(ch, g, at)
	if err != nil {
		return nil, Metrics{}, err
	}
	return sess.KNN(context.Background(), from, k)
}
