// Package repro is a Go reproduction of "Shortest Path Computation on Air
// Indexes" (Kellaris & Mouratidis, PVLDB 3(1), 2010): shortest-path query
// processing in road networks under the wireless broadcast model.
//
// A Server pre-computes an air index for a road network and assembles a
// broadcast cycle; a Channel repeats that cycle (optionally with packet
// loss); a Client tunes in at an arbitrary moment and answers shortest-path
// queries locally, accounting the paper's performance factors (tuning time,
// access latency, peak memory, CPU time, energy). Beyond the paper's
// single-client replay, a Station streams the cycle live to any number of
// concurrent subscribers, and RunFleet load-tests it with a pool of
// concurrent clients (see cmd/airserve).
//
// Quickstart:
//
//	g, _ := repro.GeneratePreset("germany", 0.1, 42)
//	srv, _ := repro.NewServer(repro.NR, g, repro.Params{})
//	ch, _ := repro.NewChannel(srv, 0 /* loss */, 1 /* seed */)
//	res, _ := repro.Ask(ch, srv, g, 17, 4242, 0 /* tune-in */)
//	fmt.Println(res.Dist, res.Metrics.TuningPackets)
//
// The paper's two contributions are the EB (Elliptic Boundary) and NR
// (Next Region) methods; DJ, AF, LD, SPQ and HiTi are the adapted
// competitors of its Section 3.2. See DESIGN.md for the system inventory
// and EXPERIMENTS.md for the reproduced evaluation.
package repro

import (
	"context"
	"fmt"
	"io"

	"repro/internal/baseline/arcflag"
	"repro/internal/baseline/djair"
	"repro/internal/baseline/hiti"
	"repro/internal/baseline/landmark"
	"repro/internal/baseline/spq"
	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/multichannel"
	"repro/internal/netgen"
	"repro/internal/precompute"
	"repro/internal/scheme"
	"repro/internal/spath"
	"repro/internal/station"
	"repro/internal/update"
	"repro/internal/workload"
)

// Method names an air-index scheme.
type Method string

// The seven methods of the paper's evaluation.
const (
	EB   Method = "EB"   // Elliptic Boundary (Section 4, this paper's contribution)
	NR   Method = "NR"   // Next Region (Section 5, this paper's contribution)
	DJ   Method = "DJ"   // broadcast adaptation of Dijkstra's algorithm
	AF   Method = "AF"   // broadcast adaptation of ArcFlag
	LD   Method = "LD"   // broadcast adaptation of Landmark (ALT)
	SPQ  Method = "SPQ"  // broadcast adaptation of the shortest-path quadtree
	HiTi Method = "HiTi" // broadcast adaptation of HiTi
)

// Methods lists all implemented methods in the paper's presentation order.
var Methods = []Method{DJ, NR, EB, LD, AF, SPQ, HiTi}

// Re-exported core types. The root package is a facade: the full
// implementation lives in internal packages, one per subsystem.
type (
	// Graph is an immutable directed weighted road network.
	Graph = graph.Graph
	// NodeID identifies a node.
	NodeID = graph.NodeID
	// Server is a built air-index method: pre-computation plus cycle.
	Server = scheme.Server
	// Client answers queries against a broadcast tuner.
	Client = scheme.Client
	// Query is a shortest-path request.
	Query = scheme.Query
	// Result carries the path, its cost and the per-query metrics.
	Result = scheme.Result
	// Metrics aggregates the paper's per-query performance factors.
	Metrics = metrics.Query
	// Channel is a broadcast channel repeating a cycle, with optional
	// deterministic packet loss.
	Channel = broadcast.Channel
	// Tuner is a client's position on a channel.
	Tuner = broadcast.Tuner
	// Feed is any packet source a Tuner can run on: an offline Channel or a
	// live station Subscription.
	Feed = broadcast.Feed
	// Station is a live broadcast station streaming a cycle to concurrent
	// subscribers.
	Station = station.Station
	// StationConfig tunes a station's clock (virtual or paced to a bit
	// rate) and per-subscriber buffering.
	StationConfig = station.Config
	// Subscription is one listener's live view of a station's air; it is a
	// Feed, so NewFeedTuner(sub, sub.Start()) runs any client on it.
	Subscription = station.Sub
	// FleetOptions tunes a concurrent load run.
	FleetOptions = fleet.Options
	// FleetResult aggregates a load run: means, p50/p95/p99 tails and
	// queries/sec throughput.
	FleetResult = fleet.Result
	// ChannelStats is one channel's share of a multi-channel fleet run.
	ChannelStats = fleet.ChannelStats
	// Quantiles is a p50/p95/p99 summary of one metric.
	Quantiles = metrics.Quantiles
	// MultiStation is a live K-channel broadcast: the cycle sharded by
	// region across K station shards on one global clock, with an on-air
	// directory so radios hop to exactly the channels a query needs.
	MultiStation = multichannel.Station
	// MultiSub is a channel-hopping radio subscription: a Feed over the
	// logical cycle whose latency runs on the global clock and whose tuning
	// is charged per channel.
	MultiSub = multichannel.Rx
	// MultiSubOptions pick a radio's start channel and whether it
	// bootstraps the channel directory from the air (cold) or holds a
	// cached copy (warm, the default).
	MultiSubOptions = multichannel.RxOptions
	// WeightUpdate sets the weight of one directed arc: the mutation unit
	// of the dynamic-network subsystem.
	WeightUpdate = graph.WeightUpdate
	// UpdateManager owns a versioned broadcast's server side: it accepts
	// weight-update batches, rebuilds the scheme structures into new cycle
	// versions (with KindDelta patch trailers), and hands the cycles to a
	// live station's Swap.
	UpdateManager = update.Manager
	// UpdateBuild is one immutable cycle version an UpdateManager produced.
	UpdateBuild = update.Build
	// ChurnOptions tunes an update-churn load run: fleet parameters plus
	// the synthetic traffic feed (batches, batch size, interval, mode).
	ChurnOptions = fleet.ChurnOptions
	// ChurnResult aggregates a churn run: the usual fleet result plus the
	// staleness accounting (swaps, stale queries, re-entries, clean vs
	// stale latency).
	ChurnResult = fleet.ChurnResult
	// UpdateMode picks the weight-change profile of the synthetic traffic
	// feed (mixed, increase, decrease, no-op).
	UpdateMode = update.Mode
)

// Weight-change profiles for ChurnOptions.Mode.
const (
	UpdateMixed    = update.ModeMixed
	UpdateIncrease = update.ModeIncrease
	UpdateDecrease = update.ModeDecrease
	UpdateNoop     = update.ModeNoop
)

// Params tunes a method's server. Zero values select the paper's defaults.
type Params struct {
	// Regions is the kd-tree partition count for EB, NR (paper: 32) and AF
	// (paper: 16); power of two.
	Regions int
	// Landmarks is LD's anchor count (paper: 4).
	Landmarks int
	// HiTiDepth is HiTi's hierarchy depth (leaf grid 2^d x 2^d; default 3).
	HiTiDepth int
	// Segments toggles EB/NR's cross-border/local data segmentation
	// (Section 4.1). Defaults to on.
	DisableSegments bool
	// MemoryBound enables EB/NR's client-side super-edge pre-computation
	// (Section 6.1).
	MemoryBound bool
}

func (p Params) coreOptions() core.Options {
	regions := p.Regions
	if regions == 0 {
		regions = 32
	}
	return core.Options{
		Regions:     regions,
		Segments:    !p.DisableSegments,
		SquareCells: true,
		MemoryBound: p.MemoryBound,
	}
}

// NewServer builds the named method's server for g.
func NewServer(m Method, g *Graph, p Params) (Server, error) {
	switch m {
	case EB:
		return core.NewEB(g, p.coreOptions())
	case NR:
		return core.NewNR(g, p.coreOptions())
	case DJ:
		return djair.New(g), nil
	case AF:
		regions := p.Regions
		if regions == 0 {
			regions = 16
		}
		return arcflag.New(g, arcflag.Options{Regions: regions})
	case LD:
		return landmark.New(g, landmark.Options{Landmarks: p.Landmarks})
	case SPQ:
		return spq.New(g)
	case HiTi:
		return hiti.New(g, hiti.Options{Depth: p.HiTiDepth})
	default:
		return nil, fmt.Errorf("repro: unknown method %q", m)
	}
}

// NewChannel wraps a server's cycle in a broadcast channel with the given
// packet-loss rate in [0, 1) and seed.
func NewChannel(srv Server, lossRate float64, seed int64) (*Channel, error) {
	return broadcast.NewChannel(srv.Cycle(), lossRate, seed)
}

// NewTuner tunes into ch at the given absolute packet position — the moment
// the query is posed.
func NewTuner(ch *Channel, at int) *Tuner { return broadcast.NewTuner(ch, at) }

// NewFeedTuner tunes into any Feed — typically a live station Subscription
// at its Start position.
func NewFeedTuner(f Feed, at int) *Tuner { return broadcast.NewFeedTuner(f, at) }

// NewStation puts srv's cycle behind a live broadcast station. Call
// Start(ctx) to go on the air, Subscribe for each tuned-in client, and Stop
// (or cancel the context) to shut down.
func NewStation(srv Server, cfg StationConfig) (*Station, error) {
	return station.New(srv.Cycle(), cfg)
}

// RunFleet load-tests a live station with opts.Clients concurrent clients
// of srv answering a generated query workload over g (reference answers are
// pre-computed server-side for verification). The station must already be
// on the air. See cmd/airserve for the CLI front end.
func RunFleet(ctx context.Context, st *Station, srv Server, g *Graph, opts FleetOptions) (FleetResult, error) {
	return fleet.Run(ctx, st, srv, fleetWorkload(g, opts, st.Len()), opts)
}

// fleetWorkload generates the verified query pool a fleet run answers.
// Reference distances cost one Dijkstra each, so the distinct pool is
// capped at the paper's 400-query workload size and entries are reused
// round-robin for larger query counts.
func fleetWorkload(g *Graph, opts FleetOptions, cycleLen int) *workload.Workload {
	n := opts.Queries
	if n <= 0 {
		n = 400 // the paper's workload size
	}
	return workload.Generate(g, min(n, 400), cycleLen, opts.Seed)
}

// NewUpdateManager returns a versioned-cycle manager over srv (which must
// have been built for g). Apply weight-update batches to produce new cycle
// versions and hand each Build.Cycle to Station.Swap (or MultiStation.Swap
// after re-planning); with no updates applied the manager serves srv's own
// static cycle bit-identically. EB, NR and DJ rebuild natively.
func NewUpdateManager(g *Graph, srv Server) (*UpdateManager, error) {
	return update.NewManager(g, srv, update.Config{})
}

// RunFleetChurn load-tests a live station while mgr's network churns: a
// background updater applies opts.Batches weight batches and swaps the
// station to each new cycle version, and opts.Fleet.Clients concurrent
// clients keep answering queries throughout, re-entering whenever a swap
// catches them mid-query. Every answer is verified against the Dijkstra
// reference of the network version it was computed on. The station must
// already be on the air broadcasting mgr's current cycle.
func RunFleetChurn(ctx context.Context, st *Station, mgr *UpdateManager, g *Graph, opts ChurnOptions) (ChurnResult, error) {
	return fleet.RunChurn(ctx, st, mgr, fleetWorkload(g, opts.Fleet, st.Len()), opts)
}

// NewMultiStation shards srv's cycle across `channels` parallel broadcast
// channels (regions in contiguous kd order, global index copies round-robin,
// a directory segment on every channel) and puts one station shard per
// channel on a shared global clock. channels == 1 degrades to the identity
// plan: bit-for-bit the single Station substrate.
func NewMultiStation(srv Server, channels int, cfg StationConfig) (*MultiStation, error) {
	plan, err := multichannel.Build(srv.Cycle(), channels, multichannel.PlanOptions{})
	if err != nil {
		return nil, err
	}
	return multichannel.NewStation(plan, cfg)
}

// RunFleetMulti is RunFleet against a multi-channel station: the result
// additionally carries per-channel packet counts, touched-query tails and
// QPS, plus the mean channel-hop count.
func RunFleetMulti(ctx context.Context, mst *MultiStation, srv Server, g *Graph, opts FleetOptions) (FleetResult, error) {
	return fleet.RunMulti(ctx, mst, srv, fleetWorkload(g, opts, mst.Len()), opts)
}

// RegionCentroids returns per-region centroids for a server built on a
// region partitioning (EB/NR), or nil for methods without regions: the
// input multichannel's Hilbert assignment mode needs.
func RegionCentroids(srv Server, g *Graph) [][2]float64 {
	type regioned interface{ Regions() *precompute.Regions }
	r, ok := srv.(regioned)
	if !ok {
		return nil
	}
	regs := r.Regions()
	return multichannel.Centroids(g, regs.Assign, regs.N)
}

// QueryFor builds a Query for two nodes of g (the client knows the node IDs
// and their coordinates).
func QueryFor(g *Graph, s, t NodeID) Query { return scheme.QueryFor(g, s, t) }

// Ask runs one query end to end: tune in at position `at`, process with a
// fresh client of srv, return the result.
func Ask(ch *Channel, srv Server, g *Graph, s, t NodeID, at int) (Result, error) {
	tuner := broadcast.NewTuner(ch, at)
	return srv.NewClient().Query(tuner, QueryFor(g, s, t))
}

// GeneratePreset builds a synthetic stand-in for one of the paper's five
// road networks ("milan", "germany", "argentina", "india", "sanfrancisco"),
// scaled by scale (1.0 = paper-sized), deterministically from seed.
func GeneratePreset(name string, scale float64, seed int64) (*Graph, error) {
	p, err := netgen.PresetByName(name)
	if err != nil {
		return nil, err
	}
	return p.Scaled(scale).Generate(seed)
}

// Generate builds a synthetic road network with the exact node and
// (undirected) edge counts.
func Generate(nodes, edges int, seed int64) (*Graph, error) {
	return netgen.Generate(nodes, edges, seed)
}

// ReadGraph decodes a network in the binary format written by WriteGraph.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Decode(r) }

// WriteGraph encodes a network in the binary network format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.Encode(w, g) }

// ReadGraphText decodes the line-oriented text format ("v id x y" /
// "a tail head weight").
func ReadGraphText(r io.Reader) (*Graph, error) { return graph.DecodeText(r) }

// WriteGraphText encodes the line-oriented text format.
func WriteGraphText(w io.Writer, g *Graph) error { return graph.EncodeText(w, g) }

// ShortestPath computes the reference answer on the full network (no
// broadcasting): distance, path and settled-node count.
func ShortestPath(g *Graph, s, t NodeID) (float64, []NodeID, int) {
	return spath.PointToPoint(g, s, t)
}

// EnergyJoules estimates a query's client-side energy at the given channel
// bit rate using the paper's WaveLAN/ARM power model (Section 3.1).
func EnergyJoules(m Metrics, bitsPerSecond int) float64 {
	return m.EnergyJoules(bitsPerSecond)
}

// HeapBudgetBytes is the reference device's application heap (8 MB), the
// feasibility threshold of the paper's Table 2.
const HeapBudgetBytes = metrics.HeapBudgetBytes

// Channel rates used throughout the paper's evaluation.
const (
	Rate2Mbps   = metrics.RateFast
	Rate384Kbps = metrics.RateSlow
)

// --- On-air spatial queries over the road network (the paper's Section 8
// future work: "range and nearest neighbor retrieval"). ---

// POIResult is a point of interest with its network distance.
type POIResult = core.POIResult

// SpatialServer is an EB server whose cycle carries POI-flagged nodes and
// answers on-air range and kNN queries in network distance.
type SpatialServer struct {
	eb *core.EB
}

// NewSpatialServer builds an EB-based spatial broadcast for g; poi flags
// the points of interest per node.
func NewSpatialServer(g *Graph, poi []bool, p Params) (*SpatialServer, error) {
	opts := p.coreOptions()
	opts.POI = poi
	eb, err := core.NewEB(g, opts)
	if err != nil {
		return nil, err
	}
	return &SpatialServer{eb: eb}, nil
}

// Cycle returns the broadcast cycle.
func (s *SpatialServer) Cycle() *broadcast.Cycle { return s.eb.Cycle() }

// NewChannel wraps the spatial cycle in a channel.
func (s *SpatialServer) NewChannel(lossRate float64, seed int64) (*Channel, error) {
	return broadcast.NewChannel(s.eb.Cycle(), lossRate, seed)
}

// RangeOnAir returns every POI within network distance radius of node from,
// sorted by distance, tuning in at position `at`.
func (s *SpatialServer) RangeOnAir(ch *Channel, g *Graph, from NodeID, radius float64, at int) ([]POIResult, Metrics, error) {
	t := broadcast.NewTuner(ch, at)
	return s.eb.NewSpatialClient().RangeOnAir(t, scheme.QueryFor(g, from, from), radius)
}

// KNNOnAir returns the k POIs nearest to node from in network distance.
func (s *SpatialServer) KNNOnAir(ch *Channel, g *Graph, from NodeID, k int, at int) ([]POIResult, Metrics, error) {
	t := broadcast.NewTuner(ch, at)
	return s.eb.NewSpatialClient().KNNOnAir(t, scheme.QueryFor(g, from, from), k)
}
